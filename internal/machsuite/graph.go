package machsuite

import (
	"marvel/internal/accel"
	"marvel/internal/program/ir"
)

// --- bfs: breadth-first search over a CSR graph. Injection targets are
// the EDGES and NODES register banks; their contents are traversal
// indices, so faults overwhelmingly cause out-of-bounds accesses or
// runaway traversals — the paper's all-Crash profile for BFS. ---

const (
	bfsNodes = 64
	bfsEdges = 256
)

// Accelerator-local address map for bfs.
const (
	bfsNodesAt  = 0x0000 // (bfsNodes+1) u32 offsets
	bfsEdgesAt  = 0x1000 // bfsEdges u32 targets
	bfsLevelsAt = 0x2000 // bfsNodes u32 levels (output)
	bfsQueueAt  = 0x3000 // bfsNodes u32 worklist
)

func bfsGraph() (nodes []uint32, edges []uint32) {
	r := rng(2101)
	nodes = make([]uint32, bfsNodes+1)
	edges = make([]uint32, 0, bfsEdges)
	per := bfsEdges / bfsNodes
	for i := 0; i < bfsNodes; i++ {
		nodes[i] = uint32(len(edges))
		for k := 0; k < per; k++ {
			// Bias edges forward so BFS from node 0 reaches most nodes.
			t := (i + 1 + r.Intn(bfsNodes/2)) % bfsNodes
			edges = append(edges, uint32(t))
		}
	}
	nodes[bfsNodes] = uint32(len(edges))
	return nodes, edges
}

func bfsRef() []byte {
	nodes, edges := bfsGraph()
	levels := make([]uint32, bfsNodes)
	for i := range levels {
		levels[i] = 0xFFFFFFFF
	}
	levels[0] = 0
	queue := []uint32{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := nodes[u]; e < nodes[u+1]; e++ {
			v := edges[e]
			if levels[v] == 0xFFFFFFFF {
				levels[v] = levels[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return u32le(levels)
}

func bfsKernel(base uint64, markers bool) *ir.Program {
	b := ir.New("bfs-kernel")
	if markers {
		b.Checkpoint()
	}
	nodes := b.Const(int64(base + bfsNodesAt))
	edges := b.Const(int64(base + bfsEdgesAt))
	levels := b.Const(int64(base + bfsLevelsAt))
	queue := b.Const(int64(base + bfsQueueAt))

	b.LoopN(bfsNodes, func(i ir.Val) {
		b.Store(b.Add(levels, b.ShlI(i, 2)), 0, b.Const(-1), 4)
	})
	b.Store(levels, 0, b.Const(0), 4)
	b.Store(queue, 0, b.Const(0), 4)
	head := b.Temp()
	tail := b.Temp()
	b.ConstTo(head, 0)
	b.ConstTo(tail, 1)

	ld := func(base, idx ir.Val) ir.Val { return b.Load(b.Add(base, b.ShlI(idx, 2)), 0, 4, false) }
	st := func(base, idx, v ir.Val) { b.Store(b.Add(base, b.ShlI(idx, 2)), 0, v, 4) }

	b.While(func() ir.Val { return b.Op2(ir.OpCmpLTU, ir.NoVal, head, tail) }, func() {
		u := ld(queue, head)
		b.Mov(head, b.AddI(head, 1))
		lu := ld(levels, u)
		e := b.Temp()
		b.Mov(e, ld(nodes, u))
		end := ld(nodes, b.AddI(u, 1))
		b.While(func() ir.Val { return b.Op2(ir.OpCmpLTU, ir.NoVal, e, end) }, func() {
			v := ld(edges, e)
			lv := ld(levels, v)
			unseen := b.Op2I(ir.OpCmpEQ, ir.NoVal, lv, 0xFFFFFFFF)
			b.If(unseen, func() {
				st(levels, v, b.AddI(lu, 1))
				st(queue, tail, v)
				b.Mov(tail, b.AddI(tail, 1))
			}, nil)
			b.Mov(e, b.AddI(e, 1))
		})
	})
	if markers {
		b.SwitchCPU()
	}
	b.Halt()
	return b.MustProgram()
}

func specBFS() Spec {
	nodes, edges := bfsGraph()
	d := &accel.Design{
		Name:   "bfs",
		Kernel: bfsKernel(0, false),
		Banks: []accel.BankSpec{
			{Name: "NODES", Kind: accel.RegBank, Base: bfsNodesAt, Size: 512},
			{Name: "EDGES", Kind: accel.RegBank, Base: bfsEdgesAt, Size: 1024},
			{Name: "LEVELS", Kind: accel.SPM, Base: bfsLevelsAt, Size: bfsNodes * 4},
			{Name: "QUEUE", Kind: accel.SPM, Base: bfsQueueAt, Size: bfsNodes * 4},
		},
		In: []accel.Xfer{
			{Arg: 0, Local: bfsNodesAt, Len: (bfsNodes + 1) * 4},
			{Arg: 1, Local: bfsEdgesAt, Len: bfsEdges * 4},
		},
		Out: []accel.Xfer{{Arg: 2, Local: bfsLevelsAt, Len: bfsNodes * 4}},
		FUs: accel.DefaultFUs(),
		Ops: float64(bfsEdges * 4),
	}
	return Spec{
		Name:   "bfs",
		Design: d,
		Task: accel.Task{
			Bufs: []accel.HostBuf{
				{Arg: 0, Addr: hostIn0, Init: u32le(nodes), Len: len(nodes) * 4},
				{Arg: 1, Addr: hostIn1, Init: u32le(edges), Len: len(edges) * 4},
				{Arg: 2, Addr: hostOut, Len: bfsNodes * 4},
			},
			OutArg: 2,
		},
		Ref: bfsRef,
		Targets: []Component{
			{Design: "bfs", Name: "EDGES", PaperBytes: 16384, ModelBytes: 1024, Kind: accel.RegBank},
			{Design: "bfs", Name: "NODES", PaperBytes: 2048, ModelBytes: 512, Kind: accel.RegBank},
		},
	}
}

// --- gemm: dense matrix multiply, C = A x B over int32, inner loop
// unrolled for datapath parallelism (the Figure 17 DSE kernel). MATRIX1
// holds one input matrix, MATRIX3 the result. ---

const gemmN = 16

const (
	gemmAAt = 0x0000
	gemmBAt = 0x1000
	gemmCAt = 0x2000
)

func gemmInputs() (a, bm []int32) {
	r := rng(2202)
	a = make([]int32, gemmN*gemmN)
	bm = make([]int32, gemmN*gemmN)
	for i := range a {
		a[i] = int32(r.Intn(2000) - 1000)
		bm[i] = int32(r.Intn(2000) - 1000)
	}
	return a, bm
}

func gemmRef() []byte {
	a, bm := gemmInputs()
	c := make([]int32, gemmN*gemmN)
	for i := 0; i < gemmN; i++ {
		for j := 0; j < gemmN; j++ {
			var s int32
			for k := 0; k < gemmN; k++ {
				s += a[i*gemmN+k] * bm[k*gemmN+j]
			}
			c[i*gemmN+j] = s
		}
	}
	return u32le(i32sToU32(c))
}

// GemmKernel builds the gemm dataflow program. The inner product is fully
// unrolled and two output elements are computed per dataflow block, the
// spatial parallelism a matrix engine's datapath provides; the instantiated
// functional-unit counts (GemmDesign) then throttle how much of it issues
// per cycle — the Figure 17 design-space axis.
func GemmKernel(unroll int) *ir.Program { return gemmKernel(unroll, 0, false) }

func gemmKernel(unroll int, base uint64, markers bool) *ir.Program {
	_ = unroll // parallelism is throttled by the FU configuration
	const junroll = 2
	b := ir.New("gemm-kernel")
	if markers {
		b.Checkpoint()
	}
	aB := b.Const(int64(base + gemmAAt))
	bB := b.Const(int64(base + gemmBAt))
	cB := b.Const(int64(base + gemmCAt))
	ld := func(base, idx ir.Val) ir.Val {
		return b.Load(b.Add(base, b.ShlI(idx, 2)), 0, 4, true)
	}
	b.LoopN(gemmN, func(i ir.Val) {
		rowA := b.ShlI(i, 4) // i * gemmN
		b.LoopN(gemmN/junroll, func(jj ir.Val) {
			j0 := b.ShlI(jj, 1)
			for u := int64(0); u < junroll; u++ {
				j := b.Op2I(ir.OpAdd, ir.NoVal, j0, u)
				lanes := make([]ir.Val, gemmN)
				for k := int64(0); k < gemmN; k++ {
					av := ld(aB, b.Op2I(ir.OpAdd, ir.NoVal, rowA, k))
					bv := ld(bB, b.Add(b.Const(k*gemmN), j))
					lanes[k] = b.Mul(av, bv)
				}
				// Balanced reduction tree.
				for width := gemmN; width > 1; width /= 2 {
					for t := 0; t < width/2; t++ {
						lanes[t] = b.Add(lanes[t], lanes[t+width/2])
					}
				}
				b.Store(b.Add(cB, b.ShlI(b.Add(rowA, j), 2)), 0, lanes[0], 4)
			}
		})
	})
	if markers {
		b.SwitchCPU()
	}
	b.Halt()
	return b.MustProgram()
}

// gemmScalarKernel is the straightforward triple-loop gemm a compiler
// would emit for a CPU (the §V-G comparison's CPU-side rendition).
func gemmScalarKernel(base uint64, markers bool) *ir.Program {
	b := ir.New("gemm-cpu")
	if markers {
		b.Checkpoint()
	}
	aB := b.Const(int64(base + gemmAAt))
	bB := b.Const(int64(base + gemmBAt))
	cB := b.Const(int64(base + gemmCAt))
	ld := func(base, idx ir.Val) ir.Val {
		return b.Load(b.Add(base, b.ShlI(idx, 2)), 0, 4, true)
	}
	b.LoopN(gemmN, func(i ir.Val) {
		rowA := b.ShlI(i, 4)
		b.LoopN(gemmN, func(j ir.Val) {
			acc := b.Temp()
			b.ConstTo(acc, 0)
			b.LoopN(gemmN, func(k ir.Val) {
				av := ld(aB, b.Add(rowA, k))
				bv := ld(bB, b.Add(b.ShlI(k, 4), j))
				b.Mov(acc, b.Add(acc, b.Mul(av, bv)))
			})
			b.Store(b.Add(cB, b.ShlI(b.Add(rowA, j), 2)), 0, acc, 4)
		})
	})
	if markers {
		b.SwitchCPU()
	}
	b.Halt()
	return b.MustProgram()
}

// GemmDesign builds a gemm design with the given functional-unit count and
// matching unroll (the Figure 17 configurations).
func GemmDesign(multipliers int) *accel.Design {
	unroll := multipliers
	if unroll > 16 {
		unroll = 16
	}
	if unroll < 1 {
		unroll = 1
	}
	return &accel.Design{
		Name:   "gemm",
		Kernel: GemmKernel(unroll),
		// Banks below; FU counts throttle the kernel's unrolled datapath.
		Banks: []accel.BankSpec{
			{Name: "MATRIX1", Kind: accel.SPM, Base: gemmAAt, Size: gemmN * gemmN * 4},
			{Name: "MATRIX2", Kind: accel.SPM, Base: gemmBAt, Size: gemmN * gemmN * 4},
			{Name: "MATRIX3", Kind: accel.SPM, Base: gemmCAt, Size: gemmN * gemmN * 4},
		},
		In: []accel.Xfer{
			{Arg: 0, Local: gemmAAt, Len: gemmN * gemmN * 4},
			{Arg: 1, Local: gemmBAt, Len: gemmN * gemmN * 4},
		},
		Out: []accel.Xfer{{Arg: 2, Local: gemmCAt, Len: gemmN * gemmN * 4}},
		FUs: accel.FUConfig{Adders: 2 * multipliers, Multipliers: multipliers, Dividers: 1, MemPorts: 2 + multipliers},
		Ops: 2 * gemmN * gemmN * gemmN,
	}
}

// GemmTask returns the standard gemm task buffers.
func GemmTask() accel.Task {
	a, bm := gemmInputs()
	return accel.Task{
		Bufs: []accel.HostBuf{
			{Arg: 0, Addr: hostIn0, Init: u32le(i32sToU32(a)), Len: len(a) * 4},
			{Arg: 1, Addr: hostIn1, Init: u32le(i32sToU32(bm)), Len: len(bm) * 4},
			{Arg: 2, Addr: hostOut, Len: gemmN * gemmN * 4},
		},
		OutArg: 2,
	}
}

func specGEMM() Spec {
	return Spec{
		Name:   "gemm",
		Design: GemmDesign(4),
		Task:   GemmTask(),
		Ref:    gemmRef,
		Targets: []Component{
			{Design: "gemm", Name: "MATRIX1", PaperBytes: 32768, ModelBytes: gemmN * gemmN * 4, Kind: accel.SPM},
			{Design: "gemm", Name: "MATRIX3", PaperBytes: 32768, ModelBytes: gemmN * gemmN * 4, Kind: accel.SPM},
		},
	}
}

// --- md_knn: molecular-dynamics force kernel over a k-nearest-neighbour
// list. NLADDR holds neighbour indices (crash-prone under faults); FORCEX
// is the output force array (SDC-prone). ---

const (
	knnAtoms = 32
	knnK     = 8
)

const (
	knnPosAt   = 0x0000
	knnNLAt    = 0x1000
	knnForceAt = 0x2000
)

func knnInputs() (pos []int32, nl []uint32) {
	r := rng(2303)
	pos = make([]int32, knnAtoms)
	nl = make([]uint32, knnAtoms*knnK)
	for i := range pos {
		pos[i] = int32(r.Intn(4000) - 2000)
	}
	for i := range nl {
		nl[i] = uint32(r.Intn(knnAtoms))
	}
	return pos, nl
}

func knnRef() []byte {
	pos, nl := knnInputs()
	force := make([]int32, knnAtoms)
	for i := 0; i < knnAtoms; i++ {
		var f int64
		for j := 0; j < knnK; j++ {
			d := int64(pos[i]) - int64(pos[nl[i*knnK+j]])
			f += d*d*d>>8 + d
		}
		force[i] = int32(f)
	}
	return u32le(i32sToU32(force))
}

func knnKernel(base uint64, markers bool) *ir.Program {
	b := ir.New("md_knn-kernel")
	if markers {
		b.Checkpoint()
	}
	posB := b.Const(int64(base + knnPosAt))
	nlB := b.Const(int64(base + knnNLAt))
	fB := b.Const(int64(base + knnForceAt))
	b.LoopN(knnAtoms, func(i ir.Val) {
		pi := b.Load(b.Add(posB, b.ShlI(i, 2)), 0, 4, true)
		row := b.Mul(i, b.Const(knnK))
		// All K neighbour contributions unrolled into one dataflow block:
		// the engine issues the independent lanes in parallel.
		lanes := make([]ir.Val, knnK)
		for j := 0; j < knnK; j++ {
			idx := b.Load(b.Add(nlB, b.ShlI(b.Op2I(ir.OpAdd, ir.NoVal, row, int64(j)), 2)), 0, 4, false)
			pj := b.Load(b.Add(posB, b.ShlI(idx, 2)), 0, 4, true)
			d := b.Sub(pi, pj)
			d3 := b.ShrAI(b.Mul(b.Mul(d, d), d), 8)
			lanes[j] = b.Add(d3, d)
		}
		f := lanes[0]
		for j := 1; j < knnK; j++ {
			f = b.Add(f, lanes[j])
		}
		b.Store(b.Add(fB, b.ShlI(i, 2)), 0, f, 4)
	})
	if markers {
		b.SwitchCPU()
	}
	b.Halt()
	return b.MustProgram()
}

func specMDKNN() Spec {
	pos, nl := knnInputs()
	d := &accel.Design{
		Name:   "md_knn",
		Kernel: knnKernel(0, false),
		Banks: []accel.BankSpec{
			{Name: "POSX", Kind: accel.SPM, Base: knnPosAt, Size: knnAtoms * 4},
			{Name: "NLADDR", Kind: accel.SPM, Base: knnNLAt, Size: knnAtoms * knnK * 4},
			{Name: "FORCEX", Kind: accel.SPM, Base: knnForceAt, Size: knnAtoms * 4},
		},
		In: []accel.Xfer{
			{Arg: 0, Local: knnPosAt, Len: knnAtoms * 4},
			{Arg: 1, Local: knnNLAt, Len: knnAtoms * knnK * 4},
		},
		Out: []accel.Xfer{{Arg: 2, Local: knnForceAt, Len: knnAtoms * 4}},
		FUs: accel.DefaultFUs(),
		Ops: knnAtoms * knnK * 8,
	}
	return Spec{
		Name:   "md_knn",
		Design: d,
		Task: accel.Task{
			Bufs: []accel.HostBuf{
				{Arg: 0, Addr: hostIn0, Init: u32le(i32sToU32(pos)), Len: len(pos) * 4},
				{Arg: 1, Addr: hostIn1, Init: u32le(nl), Len: len(nl) * 4},
				{Arg: 2, Addr: hostOut, Len: knnAtoms * 4},
			},
			OutArg: 2,
		},
		Ref: knnRef,
		Targets: []Component{
			{Design: "md_knn", Name: "NLADDR", PaperBytes: 16384, ModelBytes: knnAtoms * knnK * 4, Kind: accel.SPM},
			{Design: "md_knn", Name: "FORCEX", PaperBytes: 2048, ModelBytes: knnAtoms * 4, Kind: accel.SPM},
		},
	}
}

// --- spmv: CSR sparse matrix-vector multiply. VAL holds nonzero values
// (SDC-prone); COLS holds column indices (crash-prone). ---

const (
	spmvRows = 64
	spmvNNZ  = 333 // paper sizes divided by ~40: VAL 1332B, COLS 666B
)

const (
	spmvValAt  = 0x0000
	spmvColsAt = 0x1000
	spmvRowAt  = 0x2000
	spmvVecAt  = 0x3000
	spmvOutAt  = 0x4000
)

func spmvInputs() (vals []int32, cols []uint16, rowd []uint32, vec []int32) {
	r := rng(2404)
	vals = make([]int32, spmvNNZ)
	cols = make([]uint16, spmvNNZ)
	rowd = make([]uint32, spmvRows+1)
	vec = make([]int32, spmvRows)
	per := spmvNNZ / spmvRows
	extra := spmvNNZ - per*spmvRows
	pos := 0
	for i := 0; i < spmvRows; i++ {
		rowd[i] = uint32(pos)
		n := per
		if i < extra {
			n++
		}
		for k := 0; k < n; k++ {
			vals[pos] = int32(r.Intn(200) - 100)
			cols[pos] = uint16(r.Intn(spmvRows))
			pos++
		}
	}
	rowd[spmvRows] = uint32(pos)
	for i := range vec {
		vec[i] = int32(r.Intn(200) - 100)
	}
	return vals, cols, rowd, vec
}

func spmvRef() []byte {
	vals, cols, rowd, vec := spmvInputs()
	out := make([]int32, spmvRows)
	for i := 0; i < spmvRows; i++ {
		var s int32
		for k := rowd[i]; k < rowd[i+1]; k++ {
			s += vals[k] * vec[cols[k]]
		}
		out[i] = s
	}
	return u32le(i32sToU32(out))
}

func spmvKernel() *ir.Program {
	b := ir.New("spmv-kernel")
	valB := b.Const(spmvValAt)
	colB := b.Const(spmvColsAt)
	rowB := b.Const(spmvRowAt)
	vecB := b.Const(spmvVecAt)
	outB := b.Const(spmvOutAt)
	b.LoopN(spmvRows, func(i ir.Val) {
		s := b.Temp()
		b.ConstTo(s, 0)
		k := b.Temp()
		b.Mov(k, b.Load(b.Add(rowB, b.ShlI(i, 2)), 0, 4, false))
		end := b.Load(b.Add(rowB, b.ShlI(b.AddI(i, 1), 2)), 0, 4, false)
		b.While(func() ir.Val { return b.Op2(ir.OpCmpLTU, ir.NoVal, k, end) }, func() {
			v := b.Load(b.Add(valB, b.ShlI(k, 2)), 0, 4, true)
			c := b.Load(b.Add(colB, b.ShlI(k, 1)), 0, 2, false)
			x := b.Load(b.Add(vecB, b.ShlI(c, 2)), 0, 4, true)
			b.Mov(s, b.Add(s, b.Mul(v, x)))
			b.Mov(k, b.AddI(k, 1))
		})
		b.Store(b.Add(outB, b.ShlI(i, 2)), 0, s, 4)
	})
	b.Halt()
	return b.MustProgram()
}

func specSPMV() Spec {
	vals, cols, rowd, vec := spmvInputs()
	colBytes := make([]byte, 2*len(cols))
	for i, c := range cols {
		colBytes[i*2] = byte(c)
		colBytes[i*2+1] = byte(c >> 8)
	}
	d := &accel.Design{
		Name:   "spmv",
		Kernel: spmvKernel(),
		Banks: []accel.BankSpec{
			{Name: "VAL", Kind: accel.SPM, Base: spmvValAt, Size: spmvNNZ * 4},
			{Name: "COLS", Kind: accel.SPM, Base: spmvColsAt, Size: spmvNNZ * 2},
			{Name: "ROWDELIM", Kind: accel.SPM, Base: spmvRowAt, Size: (spmvRows + 1) * 4},
			{Name: "VEC", Kind: accel.SPM, Base: spmvVecAt, Size: spmvRows * 4},
			{Name: "OUT", Kind: accel.SPM, Base: spmvOutAt, Size: spmvRows * 4},
		},
		In: []accel.Xfer{
			{Arg: 0, Local: spmvValAt, Len: spmvNNZ * 4},
			{Arg: 1, Local: spmvColsAt, Len: spmvNNZ * 2},
			{Arg: 2, Local: spmvRowAt, Len: (spmvRows + 1) * 4},
			{Arg: 3, Local: spmvVecAt, Len: spmvRows * 4},
		},
		Out: []accel.Xfer{{Arg: 4, Local: spmvOutAt, Len: spmvRows * 4}},
		FUs: accel.DefaultFUs(),
		Ops: spmvNNZ * 2,
	}
	return Spec{
		Name:   "spmv",
		Design: d,
		Task: accel.Task{
			Bufs: []accel.HostBuf{
				{Arg: 0, Addr: hostIn0, Init: u32le(i32sToU32(vals)), Len: len(vals) * 4},
				{Arg: 1, Addr: hostIn1, Init: colBytes, Len: len(colBytes)},
				{Arg: 2, Addr: hostIn2, Init: u32le(rowd), Len: len(rowd) * 4},
				{Arg: 3, Addr: 0x6000, Init: u32le(i32sToU32(vec)), Len: len(vec) * 4},
				{Arg: 4, Addr: hostOut, Len: spmvRows * 4},
			},
			OutArg: 4,
		},
		Ref: spmvRef,
		Targets: []Component{
			{Design: "spmv", Name: "VAL", PaperBytes: 13328, ModelBytes: spmvNNZ * 4, Kind: accel.SPM},
			{Design: "spmv", Name: "COLS", PaperBytes: 6664, ModelBytes: spmvNNZ * 2, Kind: accel.SPM},
		},
	}
}
