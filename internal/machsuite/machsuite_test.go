package machsuite_test

import (
	"bytes"
	"testing"

	"marvel/internal/accel"
	"marvel/internal/core"
	"marvel/internal/machsuite"
)

func TestAllDesignsGoldenMatchReference(t *testing.T) {
	specs := machsuite.All()
	if len(specs) != 8 {
		t.Fatalf("want the paper's 8 designs, got %d", len(specs))
	}
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			sys, err := accel.NewStandalone(s.Design, s.Task)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(20_000_000); err != nil {
				t.Fatalf("golden run: %v", err)
			}
			got, err := sys.Output()
			if err != nil {
				t.Fatal(err)
			}
			want := s.Ref()
			if !bytes.Equal(got, want) {
				i := 0
				for i < len(got) && i < len(want) && got[i] == want[i] {
					i++
				}
				t.Fatalf("output diverges at byte %d:\n got %x\nwant %x",
					i, got[maxInt(0, i-4):minInt(len(got), i+12)], want[maxInt(0, i-4):minInt(len(want), i+12)])
			}
			if sys.Cluster.TaskCycles() == 0 {
				t.Fatal("task cycles not recorded")
			}
			t.Logf("%-10s task cycles=%d area=%.1f", s.Name, sys.Cluster.TaskCycles(), accel.AreaUnits(s.Design))
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTableIVComponents(t *testing.T) {
	comps := machsuite.TableIV()
	if len(comps) != 18 {
		t.Fatalf("Table IV should list 18 components, got %d", len(comps))
	}
	// Spot-check the paper rows.
	find := func(design, name string) machsuite.Component {
		for _, c := range comps {
			if c.Design == design && c.Name == name {
				return c
			}
		}
		t.Fatalf("component %s/%s missing", design, name)
		return machsuite.Component{}
	}
	if c := find("bfs", "EDGES"); c.PaperBytes != 16384 || c.Kind != accel.RegBank {
		t.Errorf("bfs EDGES: %+v", c)
	}
	if c := find("stencil3d", "C_VAR"); c.PaperBytes != 8 || c.Kind != accel.RegBank {
		t.Errorf("stencil3d C_VAR: %+v", c)
	}
	if c := find("gemm", "MATRIX3"); c.PaperBytes != 32768 || c.Kind != accel.SPM {
		t.Errorf("gemm MATRIX3: %+v", c)
	}
	for _, c := range comps {
		if c.ModelBytes <= 0 {
			t.Errorf("%s/%s has no modeled size", c.Design, c.Name)
		}
	}
}

func TestBFSFaultsAreMostlyCrashes(t *testing.T) {
	// The paper: nearly all BFS fault effects are crashes, because EDGES
	// and NODES contents are traversal indices.
	s, err := machsuite.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := accel.RunCampaign(accel.CampaignConfig{
		Design: s.Design,
		Task:   s.Task,
		Target: "EDGES",
		Model:  core.Transient,
		Faults: 60,
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Crash <= res.Counts.SDC {
		t.Errorf("bfs EDGES should be crash-dominated: %v", res.Counts)
	}
}

func TestFFTFaultsAreMostlySDCs(t *testing.T) {
	// The paper: all faulty FFT runs end as SDCs — SPM data feeds no
	// control logic or address computation.
	s, err := machsuite.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	res, err := accel.RunCampaign(accel.CampaignConfig{
		Design: s.Design,
		Task:   s.Task,
		Target: "REAL",
		Model:  core.Transient,
		Faults: 60,
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Crash != 0 {
		t.Errorf("fft REAL faults should never crash: %v", res.Counts)
	}
	if res.Counts.SDC == 0 {
		t.Errorf("fft REAL faults should cause SDCs: %v", res.Counts)
	}
}

func TestGemmDSEPerformanceScalesWithFUs(t *testing.T) {
	// More multipliers must speed the kernel up and cost more area
	// (Figure 17b).
	var prevCycles uint64
	var prevArea float64
	for i, fus := range []int{1, 4, 16} {
		d := machsuite.GemmDesign(fus)
		sys, err := accel.NewStandalone(d, machsuite.GemmTask())
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(20_000_000); err != nil {
			t.Fatal(err)
		}
		cyc := sys.Cluster.TaskCycles()
		area := accel.AreaUnits(d)
		t.Logf("gemm FUs=%-2d cycles=%-7d area=%.1f", fus, cyc, area)
		if i > 0 {
			if cyc >= prevCycles {
				t.Errorf("FUs=%d: cycles %d not faster than %d", fus, cyc, prevCycles)
			}
			if area <= prevArea {
				t.Errorf("FUs=%d: area %.1f not larger than %.1f", fus, area, prevArea)
			}
		}
		prevCycles, prevArea = cyc, area
	}
}

func TestCampaignDeterminism(t *testing.T) {
	s, err := machsuite.ByName("stencil3d")
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.CampaignConfig{
		Design: s.Design, Task: s.Task, Target: "SOL",
		Model: core.Transient, Faults: 30, Seed: 9,
	}
	r1, err := accel.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := accel.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counts != r2.Counts {
		t.Fatalf("accel campaign not deterministic: %v vs %v", r1.Counts, r2.Counts)
	}
}

func TestPermanentFaultCampaign(t *testing.T) {
	s, err := machsuite.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	res, err := accel.RunCampaign(accel.CampaignConfig{
		Design: s.Design, Task: s.Task, Target: "MATRIX1",
		Model: core.StuckAt1, Faults: 30, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total() != 30 {
		t.Fatalf("classified %d of 30", res.Counts.Total())
	}
	// Stuck-at-1 on input data should corrupt many runs.
	if res.Counts.SDC == 0 {
		t.Errorf("expected SDCs from stuck-at faults on MATRIX1: %v", res.Counts)
	}
}
