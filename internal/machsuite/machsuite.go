// Package machsuite re-implements the eight MachSuite accelerator designs
// the paper evaluates (Table IV, Figures 14, 16, 17) as dataflow kernels
// for the internal/accel engine: bfs, fft, gemm, md_knn, mergesort, spmv,
// stencil2d and stencil3d. Each design declares the same memory components
// as Table IV (EDGES/NODES register banks, IMG/REAL scratchpads, ...) with
// problem sizes scaled down so that thousand-run fault campaigns complete
// on one machine; the component roles — input vs output vs index data —
// are preserved, since those roles drive the paper's SDC-vs-Crash split.
package machsuite

import (
	"fmt"
	"math/rand"

	"marvel/internal/accel"
)

// Component records one Table IV injection target.
type Component struct {
	Design     string
	Name       string
	PaperBytes int // size reported in the paper's Table IV
	ModelBytes int // size in this implementation
	Kind       accel.BankKind
}

// Spec is one accelerator design instance ready to run or inject.
type Spec struct {
	Name   string
	Design *accel.Design
	Task   accel.Task
	// Ref computes the golden output buffer in pure Go.
	Ref func() []byte
	// Targets lists the Table IV injection components.
	Targets []Component
}

// All returns the eight designs in the paper's Table IV order.
func All() []Spec {
	return []Spec{
		specBFS(), specFFT(), specGEMM(), specMDKNN(),
		specMergesort(), specSPMV(), specStencil2D(), specStencil3D(),
	}
}

// ByName returns the named design.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("machsuite: unknown design %q", name)
}

// TableIV returns the full injection-component inventory, mirroring the
// paper's Table IV (with this repo's scaled sizes alongside).
func TableIV() []Component {
	var out []Component
	for _, s := range All() {
		out = append(out, s.Targets...)
	}
	return out
}

// Host-buffer layout shared by the tasks.
const (
	hostIn0 = 0x1000
	hostIn1 = 0x3000
	hostIn2 = 0x5000
	hostOut = 0x8000
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func u32le(vals []uint32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		out[i*4] = byte(v)
		out[i*4+1] = byte(v >> 8)
		out[i*4+2] = byte(v >> 16)
		out[i*4+3] = byte(v >> 24)
	}
	return out
}

func i32sToU32(xs []int32) []uint32 {
	out := make([]uint32, len(xs))
	for i, x := range xs {
		out[i] = uint32(x)
	}
	return out
}
