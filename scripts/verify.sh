#!/bin/sh
# verify.sh — the repository's full verification gauntlet:
#   1. tier-1: build + full test suite
#   2. race jobs: the CPU and accelerator campaigns' parallel paths under
#      the race detector
#   3. bench guard: the forking ablations compile and run
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: build + tests =="
go build ./...
go test ./...

echo "== race: parallel campaign determinism =="
go test -race -run 'TestCampaignWorkerCountInvariance|TestForkCloneEquivalence' ./internal/campaign

echo "== race: parallel accel campaign determinism =="
go test -race -run 'TestAccelCampaignWorkerInvariance|TestStandaloneForkResetEquivalence' ./internal/accel
go test -race -run 'TestAccelCampaignEquivalenceStuckAt0|TestAccelMaskPopulationWindowIndependentOfSchedule' ./internal/accel

echo "== bench guard: forking ablations =="
go test -run '^$' -bench 'BenchmarkAblation_CheckpointForking|BenchmarkAccelCampaign' -benchtime 1x .

echo "verify: OK"
