#!/bin/sh
# verify.sh — the repository's full verification gauntlet:
#   1. tier-1: build + vet + gofmt cleanliness + full test suite
#   1b. marvel-vet lint job: the custom static-analysis suite
#       (determinism, maporder, rngsource, obscost, errdiscipline) must
#       pass on the whole tree, and — guard-the-guard — must demonstrably
#       fail on a seeded violation
#   2. race jobs: the CPU and accelerator campaigns' parallel paths under
#      the race detector (including traced campaigns, atomic ForkStats
#      and the checkpoint-ladder differential suite)
#   3. sweep race job + differential guard: the orchestrator's two-level
#      parallelism, golden-cache reuse and resume must be race-free and
#      bit-identical to standalone campaigns; adaptive confidence-targeted
#      sizing must be schedule-independent and a bit-identical prefix of
#      the fixed-budget run, and must demonstrably save >= 30% of the
#      worst-case budget at equal margin
#   4. observability guard: tracing and profiling must be zero-alloc on
#      the golden path and must not perturb verdict streams; the sweep's
#      Chrome-trace timeline export must satisfy the format's schema
#      invariants
#   5. bench guard: the forking ablations and tracing-overhead benches
#      compile and run, the checkpoint ladder demonstrably cuts
#      pre-injection replay at least 2x on a long-window workload, and
#      span profiling costs < 5% end-to-end on a parallel campaign
#   6. explain smoke test: the CLI narrates a known-SDC fault end to end
#   7. server race job: the campaign service's worker pool, golden LRU,
#      event streams and drain under the race detector, with served-vs-
#      offline digest differentials
#   8. fuzz smoke: 30s per fuzz target over the checked-in corpora
#   9. coverage gate: internal/server must stay >= 80% covered
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: build + vet + gofmt + tests =="
go build ./...
go vet ./...
dirty="$(gofmt -l .)"
[ -z "$dirty" ] || {
	echo "verify: gofmt: files need formatting:" >&2
	echo "$dirty" >&2
	exit 1
}
go test ./...

echo "== marvel-vet: custom static-analysis suite =="
go run ./cmd/marvel-vet ./...

# Guard the guard: seed a determinism violation into a scratch file and
# demand marvel-vet rejects it when analyzed under an engine import path.
vetdir="$(mktemp -d)"
cat >"$vetdir/bad.go" <<'EOF'
package campaign

import "time"

func skew() time.Time { return time.Now() }
EOF
if go run ./cmd/marvel-vet -as marvel/internal/campaign "$vetdir/bad.go" >/dev/null 2>&1; then
	rm -rf "$vetdir"
	echo "verify: marvel-vet accepted a seeded time.Now violation" >&2
	exit 1
fi
rm -rf "$vetdir"

echo "== race: parallel campaign determinism =="
go test -race -run 'TestCampaignWorkerCountInvariance|TestForkCloneEquivalence' ./internal/campaign
go test -race -run 'TestTracingDoesNotChangeVerdicts|TestForkStatsUnderParallelWorkers' ./internal/campaign

echo "== race: parallel accel campaign determinism =="
go test -race -run 'TestAccelCampaignWorkerInvariance|TestStandaloneForkResetEquivalence' ./internal/accel
go test -race -run 'TestAccelCampaignEquivalenceStuckAt0|TestAccelMaskPopulationWindowIndependentOfSchedule' ./internal/accel
go test -race -run 'TestAccelTracingDoesNotChangeVerdicts|TestAccelForkStatsUnderParallelWorkers' ./internal/accel

echo "== race: checkpoint-ladder dispatch equivalence =="
# The ladder's rung-sorted dispatch and per-rung scratch systems are the
# newest parallel surface: the differential suite must pass under the
# race detector, serial and 8-worker alike, on both engines.
go test -race -run 'TestLadderEquivalenceSerialAndParallel|TestLadderForkStatsAccounting' ./internal/campaign
go test -race -run 'TestAccelLadderEquivalenceSerialAndParallel|TestAccelLadderForkStatsAccounting' ./internal/accel

# Guard: the ladder-vs-baseline differentials must exist and actually
# pass — they carry the proof that rung forking never changes a verdict.
for t in TestLadderEquivalenceAllTargets TestLadderTracedNarrationIdentical TestLadderStraddlingMaskAppliesInCycleOrder; do
	go test -run "^${t}\$" -v ./internal/campaign | grep -q -- "--- PASS: ${t}" || {
		echo "verify: ladder differential guard: ${t} did not run/pass" >&2
		exit 1
	}
done
for t in TestAccelLadderEquivalenceAllDesigns TestAccelLadderEquivalenceWindowOverride; do
	go test -run "^${t}\$" -v ./internal/accel | grep -q -- "--- PASS: ${t}" || {
		echo "verify: ladder differential guard: ${t} did not run/pass" >&2
		exit 1
	}
done

echo "== race: adaptive-sizing dispatch equivalence =="
# Adaptive stopping decides at batch barriers, so the achieved sample and
# the record stream must be schedule-independent: the serial and 8-worker
# adaptive campaigns agree under the race detector on both engines.
go test -race -run 'TestAdaptiveEquivalenceSerialAndParallel|TestAdaptiveEquivalenceWithLadder' ./internal/campaign
go test -race -run 'TestAccelAdaptiveSerialAndParallel|TestAccelAdaptiveWithLadder' ./internal/accel

# Guard: the adaptive-vs-fixed differentials must exist and actually
# pass — they carry the proof that stopping early only truncates the
# prefix-stable record stream, never changes it.
for t in TestAdaptiveEquivalenceAllTargets TestAdaptiveStopsEarlyAndConverges TestFixedModeUnchangedByAdaptiveFields; do
	go test -run "^${t}\$" -v ./internal/campaign | grep -q -- "--- PASS: ${t}" || {
		echo "verify: adaptive differential guard: ${t} did not run/pass" >&2
		exit 1
	}
done
for t in TestAccelAdaptiveEquivalenceAllDesigns TestAccelAdaptiveStopsEarlyAndConverges; do
	go test -run "^${t}\$" -v ./internal/accel | grep -q -- "--- PASS: ${t}" || {
		echo "verify: adaptive differential guard: ${t} did not run/pass" >&2
		exit 1
	}
done
go test -run '^TestSweepAdaptiveResume$' -v ./internal/sweep | grep -q -- '--- PASS: TestSweepAdaptiveResume' || {
	echo "verify: adaptive differential guard: TestSweepAdaptiveResume did not run/pass" >&2
	exit 1
}

echo "== race: sweep orchestrator (golden cache, resume, worker budget) =="
go test -race ./internal/sweep

echo "== race: metrics registry + profiler =="
go test -race -run 'TestRegistryConcurrentAdds|TestServeDebugEndpoints' ./internal/obs
go test -race ./internal/obs

# Guard: the differential suite (sweep cell ≡ standalone campaign, traced
# campaign ≡ untraced campaign, proven by verdict-stream digests) must
# exist and actually run — a refactor that renames or drops it would
# otherwise silently void the bit-identity guarantee.
for t in TestSweepDifferential TestSweepAccelDifferential TestSweepResume; do
	go test -run "^${t}\$" -v ./internal/sweep | grep -q -- "--- PASS: ${t}" || {
		echo "verify: differential guard: ${t} did not run/pass" >&2
		exit 1
	}
done
for t in TestTracingDoesNotChangeVerdicts TestExplainReproducesCampaignVerdict; do
	go test -run "^${t}\$" -v ./internal/campaign | grep -q -- "--- PASS: ${t}" || {
		echo "verify: tracing differential guard: ${t} did not run/pass" >&2
		exit 1
	}
done

echo "== observability guard: zero-alloc tracing + profiling =="
for t in TestTracerZeroAlloc TestProfilerZeroAlloc; do
	go test -run "^${t}\$" -v ./internal/obs | grep -q -- "--- PASS: ${t}" || {
		echo "verify: zero-alloc observability guard: ${t} did not run/pass" >&2
		exit 1
	}
done

# Guard: the profiling-vs-bare differentials must exist and pass on all
# three layers (CPU engine, accelerator engine, sweep orchestrator) —
# they carry the proof that span boundaries sit outside simulated work,
# and the sweep one also validates the Chrome trace-event schema.
go test -run '^TestProfilingDoesNotChangeVerdicts$' -v ./internal/campaign | grep -q -- '--- PASS: TestProfilingDoesNotChangeVerdicts' || {
	echo "verify: profiling differential guard (campaign) did not run/pass" >&2
	exit 1
}
go test -run '^TestAccelProfilingDoesNotChangeVerdicts$' -v ./internal/accel | grep -q -- '--- PASS: TestAccelProfilingDoesNotChangeVerdicts' || {
	echo "verify: profiling differential guard (accel) did not run/pass" >&2
	exit 1
}
go test -run '^TestSweepProfilingDifferentialAndTimeline$' -v ./internal/sweep | grep -q -- '--- PASS: TestSweepProfilingDifferentialAndTimeline' || {
	echo "verify: profiling differential + timeline schema guard (sweep) did not run/pass" >&2
	exit 1
}

echo "== bench guard: forking ablations + tracing overhead =="
go test -run '^$' -bench 'BenchmarkAblation_CheckpointForking|BenchmarkAccelCampaign|BenchmarkTracingOverhead' -benchtime 1x .
go test -run '^$' -bench 'BenchmarkTracerEmit' -benchtime 1000x ./internal/obs

echo "== bench guard: ladder replay reduction =="
# BenchmarkCampaignLadder fails (b.Fatalf) unless LadderRungs=8 cuts the
# replayed pre-injection cycles at least 2x on the long-window workload.
go test -run '^$' -bench '^BenchmarkCampaignLadder$' -benchtime 1x .

echo "== bench guard: adaptive sizing savings =="
# BenchmarkCampaignAdaptive fails (b.Fatalf) unless confidence-targeted
# stopping saves at least 30% of the worst-case fixed budget at the same
# margin on a low-AVF cell.
go test -run '^$' -bench '^BenchmarkCampaignAdaptive$' -benchtime 1x .

echo "== bench guard: profiling overhead < 5% =="
# BenchmarkProfilingOverhead fails (b.Fatalf) if attaching a profiler to
# a parallel campaign costs more than 5% of end-to-end wall-clock.
go test -run '^$' -bench '^BenchmarkProfilingOverhead$' -benchtime 1x .

echo "== explain smoke test: narrate a known-SDC fault =="
# riscv/crc32/prf seed 1 index 10 classifies as SDC on the fast preset
# (pinned by the mask generator's pure (seed, index) derivation); the
# narrator must surface the divergence event and the SDC conclusion.
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go run ./cmd/marvel explain -isa riscv -workload crc32 -target prf \
	-preset fast -seed 1 -index 10 >"$tmp"
grep -q 'divergence' "$tmp" || {
	echo "verify: explain smoke: no divergence event in narrative" >&2
	cat "$tmp" >&2
	exit 1
}
grep -q 'verdict: sdc' "$tmp" || {
	echo "verify: explain smoke: expected an SDC verdict" >&2
	cat "$tmp" >&2
	exit 1
}

echo "== timeline smoke: campaign -timeline emits a loadable trace =="
# The CLI flag must produce a Chrome trace-event file and print the
# where-the-time-went table without perturbing the run.
trace="$(mktemp)"
trap 'rm -f "$tmp" "$trace"' EXIT
go run ./cmd/marvel campaign -isa riscv -workload crc32 -target prf \
	-preset fast -faults 20 -seed 3 -timeline "$trace" >"$tmp"
grep -q 'traceEvents' "$trace" || {
	echo "verify: timeline smoke: trace file has no traceEvents array" >&2
	exit 1
}
grep -q 'where the time went' "$tmp" || {
	echo "verify: timeline smoke: no attribution table on stdout" >&2
	cat "$tmp" >&2
	exit 1
}

echo "== race: campaign service (worker pool, golden LRU, drain) =="
go test -race ./internal/server

# Guard: the served-vs-offline differentials must exist and pass — the
# service's bit-identity claim rests on them.
for t in TestServedCampaignDifferential TestConcurrentJobsDifferential; do
	go test -run "^${t}\$" -v ./internal/server | grep -q -- "--- PASS: ${t}" || {
		echo "verify: server differential guard: ${t} did not run/pass" >&2
		exit 1
	}
done

echo "== fuzz smoke: 30s per target =="
go test -run '^$' -fuzz '^FuzzISARoundTrip$' -fuzztime=30s ./internal/isa
go test -run '^$' -fuzz '^FuzzConfigParse$' -fuzztime=30s ./internal/config

echo "== coverage gate: internal/server >= 80% =="
cov="$(go test -cover ./internal/server | awk '{for (i=1;i<=NF;i++) if ($i ~ /^[0-9.]+%$/) print substr($i, 1, length($i)-1)}')"
[ -n "$cov" ] || { echo "verify: coverage gate: no coverage figure for internal/server" >&2; exit 1; }
awk -v c="$cov" 'BEGIN { exit (c >= 80.0) ? 0 : 1 }' || {
	echo "verify: coverage gate: internal/server at ${cov}%, need >= 80%" >&2
	exit 1
}
echo "internal/server coverage: ${cov}%"

echo "verify: OK"
