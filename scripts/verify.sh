#!/bin/sh
# verify.sh — the repository's full verification gauntlet:
#   1. tier-1: build + full test suite
#   2. race jobs: the CPU and accelerator campaigns' parallel paths under
#      the race detector
#   3. sweep race job + differential guard: the orchestrator's two-level
#      parallelism, golden-cache reuse and resume must be race-free and
#      bit-identical to standalone campaigns
#   4. bench guard: the forking ablations compile and run
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: build + tests =="
go build ./...
go test ./...

echo "== race: parallel campaign determinism =="
go test -race -run 'TestCampaignWorkerCountInvariance|TestForkCloneEquivalence' ./internal/campaign

echo "== race: parallel accel campaign determinism =="
go test -race -run 'TestAccelCampaignWorkerInvariance|TestStandaloneForkResetEquivalence' ./internal/accel
go test -race -run 'TestAccelCampaignEquivalenceStuckAt0|TestAccelMaskPopulationWindowIndependentOfSchedule' ./internal/accel

echo "== race: sweep orchestrator (golden cache, resume, worker budget) =="
go test -race ./internal/sweep

# Guard: the differential suite (sweep cell ≡ standalone campaign, proven
# by verdict-stream digests) must exist and actually run — a refactor that
# renames or drops it would otherwise silently void the bit-identity
# guarantee.
for t in TestSweepDifferential TestSweepAccelDifferential TestSweepResume; do
	go test -run "^${t}\$" -v ./internal/sweep | grep -q -- "--- PASS: ${t}" || {
		echo "verify: differential guard: ${t} did not run/pass" >&2
		exit 1
	}
done

echo "== bench guard: forking ablations =="
go test -run '^$' -bench 'BenchmarkAblation_CheckpointForking|BenchmarkAccelCampaign' -benchtime 1x .

echo "verify: OK"
