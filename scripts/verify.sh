#!/bin/sh
# verify.sh — the repository's full verification gauntlet:
#   1. tier-1: build + full test suite
#   2. race job: the campaign's parallel paths under the race detector
#   3. bench guard: the checkpoint-forking ablation compiles and runs
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: build + tests =="
go build ./...
go test ./...

echo "== race: parallel campaign determinism =="
go test -race -run 'TestCampaignWorkerCountInvariance|TestForkCloneEquivalence' ./internal/campaign

echo "== bench guard: checkpoint-forking ablation =="
go test -run '^$' -bench 'BenchmarkAblation_CheckpointForking' -benchtime 1x .

echo "verify: OK"
