module marvel

go 1.24
