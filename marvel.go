// Package marvel is a Go reproduction of gem5-MARVEL (HPCA 2024), the
// first consolidated microarchitecture-level fault-injection framework for
// heterogeneous SoCs. The library bundles, all built from scratch:
//
//   - a cycle-level out-of-order CPU model executing three simplified
//     64-bit ISAs (Arm-, x86- and RISC-V-flavoured) through real caches,
//     with decode running on raw instruction bytes;
//   - a gem5-SALAM-style accelerator engine (dataflow kernels over
//     scratchpads, register banks, MMRs, DMA, interrupts) plus the eight
//     MachSuite designs of the paper's Table IV;
//   - the fifteen MiBench-style workloads of the paper's figures, compiled
//     per ISA through a small IR toolchain;
//   - the MARVEL fault framework itself: transient and permanent fault
//     models, statistical mask generation, parallel campaign execution
//     with checkpoint forking and early termination, Masked/SDC/Crash and
//     HVF classification, and AVF/wAVF/HVF/OPF metrics.
//
// This root package is the stable facade: examples, tools and downstream
// users drive campaigns through it without touching internal packages.
package marvel

import (
	"fmt"
	"time"

	"marvel/internal/accel"
	"marvel/internal/campaign"
	"marvel/internal/classify"
	"marvel/internal/config"
	"marvel/internal/core"
	"marvel/internal/isa"
	"marvel/internal/machsuite"
	"marvel/internal/metrics"
	"marvel/internal/obs"
	"marvel/internal/program"
	"marvel/internal/soc"
	"marvel/internal/sweep"
	"marvel/internal/workloads"
)

// Supported ISA names.
const (
	ISAArm   = "arm"
	ISAX86   = "x86"
	ISARiscv = "riscv"
)

// ISAs returns the ISA names in the paper's figure order.
func ISAs() []string { return []string{ISAArm, ISAX86, ISARiscv} }

// FaultModel selects the injected fault type (the paper's Table III).
type FaultModel string

// Fault models.
const (
	Transient FaultModel = "transient"
	StuckAt0  FaultModel = "stuck-at-0"
	StuckAt1  FaultModel = "stuck-at-1"
)

func (m FaultModel) internal() (core.Model, error) {
	switch m {
	case "", Transient:
		return core.Transient, nil
	case StuckAt0:
		return core.StuckAt0, nil
	case StuckAt1:
		return core.StuckAt1, nil
	}
	return 0, fmt.Errorf("marvel: unknown fault model %q", m)
}

// WorkloadNames lists the fifteen MiBench-style benchmarks.
func WorkloadNames() []string { return workloads.Names() }

// DesignNames lists the eight MachSuite accelerator designs.
func DesignNames() []string {
	var out []string
	for _, s := range machsuite.All() {
		out = append(out, s.Name)
	}
	return out
}

// CPUTargets lists the CPU-side injection targets.
func CPUTargets() []string { return append([]string(nil), campaign.CPUTargets...) }

// Component describes one accelerator injection target (Table IV).
type Component struct {
	Design     string
	Name       string
	PaperBytes int
	ModelBytes int
	Kind       string // "SPM" or "RegBank"
}

// TableIV returns the accelerator component inventory of the paper's
// Table IV.
func TableIV() []Component {
	var out []Component
	for _, c := range machsuite.TableIV() {
		out = append(out, Component{
			Design:     c.Design,
			Name:       c.Name,
			PaperBytes: c.PaperBytes,
			ModelBytes: c.ModelBytes,
			Kind:       c.Kind.String(),
		})
	}
	return out
}

// CampaignOptions configures a CPU fault-injection campaign.
type CampaignOptions struct {
	ISA      string // "arm", "x86", "riscv"
	Workload string // one of WorkloadNames()
	// Target is one of CPUTargets(), or a "+"-joined combination of them
	// ("prf+rob+iq") selecting the paper's multi-structure mode: every
	// mask then carries one fault in each listed structure.
	Target string
	Model  FaultModel
	Faults int // statistical sample size (paper default: 1000)
	Seed   int64

	// TargetMargin > 0 enables adaptive confidence-targeted sizing: the
	// campaign draws masks in batches from the same prefix-stable stream
	// and stops once the Wilson half-width on the AVF falls to this
	// margin, making Faults (or MaxFaults) an upper bound. The executed
	// records are bit-identical to the first N of the fixed-budget run.
	TargetMargin float64
	// Confidence is the z quantile for adaptive stopping and reported
	// margins; 0 keeps 1.96 (95%).
	Confidence float64
	// MinFaults floors adaptive campaigns: never stop before this many
	// injections, however narrow the interval.
	MinFaults int
	// MaxFaults, when > 0, replaces Faults as the adaptive budget cap.
	MaxFaults int

	// BitsPerFault > 1 selects multi-bit masks (spatial multi-fault
	// mode); 0 or 1 is the single-bit default.
	BitsPerFault int
	// ValidOnly draws faults over live entries only.
	ValidOnly bool
	// HVF additionally classifies every run at the commit stage.
	HVF bool
	// EarlyTermination enables the §IV-B campaign optimizations.
	EarlyTermination bool
	// WatchdogFactor bounds faulty runs at factor × golden cycles
	// (expiry classifies as Crash); values <= 1 keep the default of 3.
	WatchdogFactor float64
	// PhysRegs overrides the physical register file size (Figure 15);
	// 0 keeps the Table II value of 128.
	PhysRegs int
	// Workers bounds campaign parallelism; 0 = GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
	// LegacyClone forces the pre-CoW per-run deep-clone strategy, for A/B
	// comparison against copy-on-write checkpoint forking (the default).
	LegacyClone bool
	// LadderRungs snapshots the golden run at this many evenly spaced
	// cycles inside the injection window and forks each transient run from
	// the nearest rung before its injection cycle, replaying only the
	// residual prefix. 0 keeps the single window-start checkpoint; results
	// are bit-identical for every value.
	LadderRungs int
	// Preset selects the hardware configuration: "" or "table2" is the
	// paper's Table II; "fast" is the scaled-down test preset.
	Preset string
	// Metrics, when non-nil, receives live verdict-mix and fork counters
	// as the campaign runs (the registry behind the CLI's -debug-addr
	// endpoint). Never serialized: a campaign submitted to the job
	// service gets a per-job registry from the server instead.
	Metrics *obs.Registry `json:"-"`
	// Profile, when non-nil, attributes the campaign's wall-clock to
	// phases and per-worker lanes (the CLI's -timeline flag attaches a
	// Chrome trace-event sink to it). Purely observational: verdicts are
	// bit-identical with and without it. Never serialized; a campaign
	// submitted to the job service gets a per-job profiler instead.
	Profile *obs.Profiler `json:"-"`
}

// Validate resolves every name in the options without running anything:
// the CLI fails fast with a usage error and the campaign service rejects
// a bad submission with 400 before it ever reaches the queue.
func (o CampaignOptions) Validate() error {
	if _, err := isa.ByName(o.ISA); err != nil {
		return err
	}
	if _, err := workloads.ByName(o.Workload); err != nil {
		return err
	}
	if _, err := o.Model.internal(); err != nil {
		return err
	}
	if _, err := presetFor(o.Preset, o.PhysRegs); err != nil {
		return err
	}
	if _, err := sweep.SplitTarget(o.Target); err != nil {
		return err
	}
	if o.Faults <= 0 {
		return fmt.Errorf("marvel: fault count must be positive, got %d", o.Faults)
	}
	if o.LadderRungs < 0 {
		return fmt.Errorf("marvel: ladder rungs must be non-negative, got %d", o.LadderRungs)
	}
	if err := validateAdaptive(o.TargetMargin, o.Confidence, o.MinFaults, o.MaxFaults); err != nil {
		return err
	}
	return nil
}

// validateAdaptive checks the shared adaptive-sizing knobs.
func validateAdaptive(margin, confidence float64, minF, maxF int) error {
	if margin < 0 || margin >= 1 {
		return fmt.Errorf("marvel: target margin must be in [0, 1), got %v", margin)
	}
	if confidence < 0 {
		return fmt.Errorf("marvel: confidence quantile must be non-negative, got %v", confidence)
	}
	if minF < 0 || maxF < 0 {
		return fmt.Errorf("marvel: min/max faults must be non-negative, got %d/%d", minF, maxF)
	}
	return nil
}

// Report is the outcome of a CPU campaign.
type Report struct {
	Workload string
	ISA      string
	Target   string
	Model    FaultModel

	Faults int
	Masked int
	SDC    int
	Crash  int

	AVF      float64
	SDCAVF   float64
	CrashAVF float64
	// HVF is meaningful only when HVFMeasured is true; a campaign run
	// without the commit-stage analysis reports HVFMeasured == false and
	// HVF == 0, which is "not measured", not "measured 0.0".
	HVF         float64
	HVFMeasured bool
	// Margin is the population error margin at the achieved sample size;
	// Z is the confidence quantile it (and AchievedMargin, the Wilson
	// half-width on the measured AVF) was computed at.
	Margin         float64
	Z              float64
	AchievedMargin float64
	// Requested is the fault budget; under adaptive sizing FaultsSaved =
	// Requested - Faults injections were never run, across Batches
	// dispatch batches.
	Requested   int
	FaultsSaved int
	Batches     int

	GoldenCycles uint64
	GoldenInsts  uint64
	IPC          float64
	EarlyStops   int

	// Forking stats: how the faulty runs were set up. With CoW forking
	// Forks is one per active worker and ForkReuses covers the rest of the
	// masks; the legacy strategy reports one fork (deep clone) per mask.
	LegacyClone  bool
	Forks        uint64
	ForkReuses   uint64
	PagesCopied  uint64
	SetsRestored uint64
	// Checkpoint-ladder stats (see CampaignOptions.LadderRungs): Rungs is
	// how many mid-window rungs were available, RungHits how many runs
	// forked from one, ReplayedCycles the total pre-injection cycles
	// replayed between fork points and injection cycles.
	Rungs          int
	RungHits       uint64
	ReplayedCycles uint64
}

// RunCampaign executes one CPU fault-injection campaign.
func RunCampaign(o CampaignOptions) (*Report, error) {
	a, err := isa.ByName(o.ISA)
	if err != nil {
		return nil, err
	}
	spec, err := workloads.ByName(o.Workload)
	if err != nil {
		return nil, err
	}
	model, err := o.Model.internal()
	if err != nil {
		return nil, err
	}
	img, err := program.Compile(a, spec.Build())
	if err != nil {
		return nil, err
	}
	pre, err := presetFor(o.Preset, o.PhysRegs)
	if err != nil {
		return nil, err
	}
	dom := core.DomainWholeArray
	if o.ValidOnly {
		dom = core.DomainValidOnly
	}
	targets, err := sweep.SplitTarget(o.Target)
	if err != nil {
		return nil, err
	}
	cfg := campaign.Config{
		Image:            img,
		Preset:           pre,
		Model:            model,
		Faults:           o.Faults,
		BitsPerFault:     o.BitsPerFault,
		Seed:             o.Seed,
		Domain:           dom,
		Workers:          o.Workers,
		HVF:              o.HVF,
		EarlyTermination: o.EarlyTermination,
		WatchdogFactor:   o.WatchdogFactor,
		LegacyClone:      o.LegacyClone,
		LadderRungs:      o.LadderRungs,
		TargetMargin:     o.TargetMargin,
		Confidence:       o.Confidence,
		MinFaults:        o.MinFaults,
		MaxFaults:        o.MaxFaults,
		Profile:          o.Profile,
	}
	if len(targets) > 1 {
		cfg.MultiTargets = targets
	} else {
		cfg.Target = targets[0]
	}
	if reg := o.Metrics; reg != nil {
		cfg.OnVerdict = func(_ int, v classify.Verdict) {
			reg.AddVerdict(v.Outcome.String(), v.EarlyStop, v.HVFCorrupt)
		}
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, err
	}
	if o.Metrics != nil {
		o.Metrics.AddForkStats(res.Forking.Forks, res.Forking.ReuseHits)
		o.Metrics.AddLadderStats(res.Forking.RungHits, res.Forking.ReplayedCycles)
	}
	return &Report{
		Workload:       o.Workload,
		ISA:            o.ISA,
		Target:         res.Target,
		Model:          o.Model,
		Faults:         res.Counts.Total(),
		Masked:         res.Counts.Masked,
		SDC:            res.Counts.SDC,
		Crash:          res.Counts.Crash,
		AVF:            res.Counts.AVF(),
		SDCAVF:         res.Counts.SDCAVF(),
		CrashAVF:       res.Counts.CrashAVF(),
		HVF:            res.Counts.HVF(),
		HVFMeasured:    res.Counts.HVFMeasured(),
		Margin:         res.Margin,
		Z:              res.Z,
		AchievedMargin: res.AchievedMargin,
		Requested:      res.Requested,
		FaultsSaved:    res.FaultsSaved,
		Batches:        res.Batches,
		GoldenCycles:   res.Golden.Cycles,
		GoldenInsts:    res.Golden.Insts,
		IPC:            res.Golden.Stats.IPC(),
		EarlyStops:     res.Counts.EarlyStops,
		LegacyClone:    res.Forking.Legacy,
		Forks:          res.Forking.Forks,
		ForkReuses:     res.Forking.ReuseHits,
		PagesCopied:    res.Forking.PagesCopied,
		SetsRestored:   res.Forking.CacheSetsRestored,
		Rungs:          res.Forking.Rungs,
		RungHits:       res.Forking.RungHits,
		ReplayedCycles: res.Forking.ReplayedCycles,
	}, nil
}

// AccelOptions configures an accelerator fault-injection campaign.
type AccelOptions struct {
	Design    string // one of DesignNames()
	Component string // one of the design's Table IV components
	Model     FaultModel
	Faults    int
	Seed      int64
	// Adaptive confidence-targeted sizing, as in CampaignOptions:
	// TargetMargin > 0 stops the campaign once the Wilson half-width on
	// the AVF reaches it; Confidence is the z quantile (0 = 1.96);
	// MinFaults floors the sample; MaxFaults, when > 0, caps the budget
	// instead of Faults.
	TargetMargin float64
	Confidence   float64
	MinFaults    int
	MaxFaults    int
	// GemmMultipliers overrides the gemm datapath's multiplier count
	// (the Figure 17 design-space exploration); 0 keeps the default.
	GemmMultipliers int
	// Workers bounds campaign parallelism; 0 = GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
	// LegacyRebuild forces the pre-fork strategy (a full harness rebuild
	// per fault) for A/B comparison against fork/reset reuse (the default).
	LegacyRebuild bool
	// LadderRungs snapshots the fault-free task at this many evenly spaced
	// cycles inside the injection window and forks each transient run from
	// the nearest rung strictly before its injection cycle. 0 keeps the
	// single pristine checkpoint; results are bit-identical for every
	// value. Ignored under LegacyRebuild.
	LadderRungs int
	// Metrics, when non-nil, receives live verdict-mix and fork counters
	// as the campaign runs (the registry behind the CLI's -debug-addr
	// endpoint). Never serialized; see CampaignOptions.Metrics.
	Metrics *obs.Registry `json:"-"`
	// Profile attributes wall-clock to phases and per-worker lanes; see
	// CampaignOptions.Profile. Never serialized.
	Profile *obs.Profiler `json:"-"`
}

// Validate resolves every name in the options without running anything.
func (o AccelOptions) Validate() error {
	spec, err := machsuite.ByName(o.Design)
	if err != nil {
		return err
	}
	found := false
	for _, c := range spec.Targets {
		if c.Name == o.Component {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("marvel: design %q has no component %q", o.Design, o.Component)
	}
	if _, err := o.Model.internal(); err != nil {
		return err
	}
	if o.Faults <= 0 {
		return fmt.Errorf("marvel: fault count must be positive, got %d", o.Faults)
	}
	if o.LadderRungs < 0 {
		return fmt.Errorf("marvel: ladder rungs must be non-negative, got %d", o.LadderRungs)
	}
	if err := validateAdaptive(o.TargetMargin, o.Confidence, o.MinFaults, o.MaxFaults); err != nil {
		return err
	}
	return nil
}

// AccelReport is the outcome of an accelerator campaign.
type AccelReport struct {
	Design    string
	Component string
	Faults    int
	Masked    int
	SDC       int
	Crash     int
	AVF       float64
	SDCAVF    float64
	CrashAVF  float64
	// Margin is the population error margin at the achieved sample size,
	// at quantile Z; AchievedMargin is the Wilson half-width on the
	// measured AVF. Requested/FaultsSaved/Batches mirror Report.
	Margin         float64
	Z              float64
	AchievedMargin float64
	Requested      int
	FaultsSaved    int
	Batches        int

	TaskCycles uint64
	AreaUnits  float64

	// Forking stats: how the faulty harnesses were set up. With fork/reset
	// reuse Forks is one per active worker and ForkReuses covers the rest
	// of the masks; the legacy strategy rebuilds one harness per mask.
	LegacyRebuild bool
	Forks         uint64
	ForkReuses    uint64
	PagesCopied   uint64
	// Checkpoint-ladder stats (see AccelOptions.LadderRungs).
	Rungs          int
	RungHits       uint64
	ReplayedCycles uint64
}

// RunAccelCampaign executes one accelerator fault-injection campaign.
func RunAccelCampaign(o AccelOptions) (*AccelReport, error) {
	spec, err := machsuite.ByName(o.Design)
	if err != nil {
		return nil, err
	}
	design, task := spec.Design, spec.Task
	if o.Design == "gemm" && o.GemmMultipliers > 0 {
		design = machsuite.GemmDesign(o.GemmMultipliers)
		task = machsuite.GemmTask()
	}
	model, err := o.Model.internal()
	if err != nil {
		return nil, err
	}
	cfg := accel.CampaignConfig{
		Design:        design,
		Task:          task,
		Target:        o.Component,
		Model:         model,
		Faults:        o.Faults,
		Seed:          o.Seed,
		Workers:       o.Workers,
		LegacyRebuild: o.LegacyRebuild,
		LadderRungs:   o.LadderRungs,
		TargetMargin:  o.TargetMargin,
		Confidence:    o.Confidence,
		MinFaults:     o.MinFaults,
		MaxFaults:     o.MaxFaults,
		Profile:       o.Profile,
	}
	if reg := o.Metrics; reg != nil {
		cfg.OnVerdict = func(_ int, v classify.Verdict) {
			reg.AddVerdict(v.Outcome.String(), v.EarlyStop, v.HVFCorrupt)
		}
	}
	res, err := accel.RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	if o.Metrics != nil {
		o.Metrics.AddForkStats(res.Forking.Forks, res.Forking.ReuseHits)
		o.Metrics.AddLadderStats(res.Forking.RungHits, res.Forking.ReplayedCycles)
	}
	return &AccelReport{
		Design:         o.Design,
		Component:      o.Component,
		Faults:         res.Counts.Total(),
		Masked:         res.Counts.Masked,
		SDC:            res.Counts.SDC,
		Crash:          res.Counts.Crash,
		AVF:            res.Counts.AVF(),
		SDCAVF:         res.Counts.SDCAVF(),
		CrashAVF:       res.Counts.CrashAVF(),
		Margin:         res.Margin,
		Z:              res.Z,
		AchievedMargin: res.AchievedMargin,
		Requested:      res.Requested,
		FaultsSaved:    res.FaultsSaved,
		Batches:        res.Batches,
		TaskCycles:     res.GoldenCycles,
		AreaUnits:      accel.AreaUnits(design),
		LegacyRebuild:  res.Forking.Legacy,
		Forks:          res.Forking.Forks,
		ForkReuses:     res.Forking.ReuseHits,
		PagesCopied:    res.Forking.PagesCopied,
		Rungs:          res.Forking.Rungs,
		RungHits:       res.Forking.RungHits,
		ReplayedCycles: res.Forking.ReplayedCycles,
	}, nil
}

// SweepOptions configures a figure-scale campaign sweep: the cross-product
// of a CPU grid (ISAs × Workloads × Targets × Models) and/or an
// accelerator grid (Designs × Components × Models), executed with
// two-level parallelism and a shared golden cache. See RunSweep.
type SweepOptions struct {
	// CPU grid. A CPU grid needs at least one ISA and one Target;
	// empty Workloads means all fifteen. Each Target may be a single
	// structure or a "+"-joined combination ("prf+rob+iq").
	ISAs      []string
	Workloads []string
	Targets   []string

	// Accelerator grid. Empty Components means every Table IV component
	// of each design.
	Designs    []string
	Components []string

	// Models applies to both grids; empty means transient only.
	Models []FaultModel

	Faults int // statistical sample size per cell
	Seed   int64

	// Adaptive confidence-targeted sizing, applied to every cell (see
	// CampaignOptions): TargetMargin > 0 lets each cell stop once its
	// Wilson half-width converges, Faults/MaxFaults bounding the budget.
	// The resume journal records each cell's achieved N.
	TargetMargin float64
	Confidence   float64
	MinFaults    int
	MaxFaults    int

	// Campaign knobs, applied to every cell (see CampaignOptions).
	BitsPerFault     int
	ValidOnly        bool
	HVF              bool
	EarlyTermination bool
	WatchdogFactor   float64
	PhysRegs         int
	// Preset selects the CPU hardware configuration: "" or "table2" is
	// the paper's Table II; "fast" is the scaled-down test preset.
	Preset string
	// LadderRungs forwards the checkpoint ladder to every cell's campaign
	// (see CampaignOptions.LadderRungs); results are bit-identical for
	// every value, so a resumed sweep may change it.
	LadderRungs int

	// Workers is the global worker budget shared by every concurrently
	// running cell; 0 = GOMAXPROCS. CellParallel bounds how many cells
	// run at once (0 = up to 3); each gets max(1, Workers/CellParallel)
	// campaign workers. Results are identical for every choice.
	Workers      int
	CellParallel int

	// OutDir, when non-empty, persists the sweep (manifest.json plus a
	// cells.jsonl appended per finished cell) and makes it resumable:
	// re-running the same options against the same directory skips
	// completed cells.
	OutDir string

	// OnProgress, when non-nil, observes live counters; it is called
	// serialized on cell start/finish and every classified fault, and
	// must not block. Never serialized.
	OnProgress func(SweepProgress) `json:"-"`

	// Metrics, when non-nil, receives live counter updates (verdict mix,
	// fork reuse, golden-cache hits, per-cell latency) as the sweep runs —
	// the registry behind the CLI's -debug-addr endpoint and the
	// -progress-jsonl writer. Never serialized.
	Metrics *obs.Registry `json:"-"`
	// Profile attributes the sweep's wall-clock to phases and lanes
	// (golden prep, journal appends, plus every cell's campaign phases);
	// see CampaignOptions.Profile. Never serialized.
	Profile *obs.Profiler `json:"-"`
}

// Validate plans the sweep grid without running it, resolving every ISA,
// workload, target, design, component and model name.
func (o SweepOptions) Validate() error {
	if _, err := presetFor(o.Preset, o.PhysRegs); err != nil {
		return err
	}
	if o.Faults <= 0 {
		return fmt.Errorf("marvel: fault count must be positive, got %d", o.Faults)
	}
	if o.LadderRungs < 0 {
		return fmt.Errorf("marvel: ladder rungs must be non-negative, got %d", o.LadderRungs)
	}
	if err := validateAdaptive(o.TargetMargin, o.Confidence, o.MinFaults, o.MaxFaults); err != nil {
		return err
	}
	models := make([]string, len(o.Models))
	for i, m := range o.Models {
		if _, err := m.internal(); err != nil {
			return err
		}
		if m == "" {
			m = Transient
		}
		models[i] = string(m)
	}
	_, err := sweep.Plan(sweep.Spec{
		ISAs:       o.ISAs,
		Workloads:  o.Workloads,
		Targets:    o.Targets,
		Designs:    o.Designs,
		Components: o.Components,
		Models:     models,
	})
	return err
}

// SweepProgress is a point-in-time view of a running sweep.
type SweepProgress struct {
	TotalCells    int
	CellsStarted  int
	CellsFinished int
	CellsSkipped  int // restored from the resume journal

	// TotalFaults is the budgeted total; under adaptive sizing it is an
	// upper bound, and FaultsSaved counts budgeted injections cells
	// stopped short of.
	TotalFaults int64
	FaultsDone  int64
	FaultsSaved int64
	EarlyStops  int64

	Elapsed     time.Duration
	CellsPerSec float64
	ETA         time.Duration // zero until enough throughput is observed
	LastCell    string        // key of the most recently started cell
}

// SweepCell is one completed cell of a sweep.
type SweepCell struct {
	Key       string // e.g. "cpu/arm/crc32/prf+rob/transient"
	Kind      string // "cpu" or "accel"
	ISA       string
	Workload  string
	Target    string
	Design    string
	Component string
	Model     FaultModel

	Faults     int
	Masked     int
	SDC        int
	Crash      int
	EarlyStops int

	AVF      float64
	SDCAVF   float64
	CrashAVF float64
	// HVF is meaningful only when HVFMeasured is true.
	HVF         float64
	HVFMeasured bool
	// Margin and AchievedMargin are at quantile Z; Requested/FaultsSaved/
	// Batches report the cell's adaptive sizing (see Report).
	Margin         float64
	Z              float64
	AchievedMargin float64
	Requested      int
	FaultsSaved    int
	Batches        int

	GoldenCycles uint64
	TargetBits   uint64
	WallMS       int64
}

// SweepReport is the outcome of a sweep.
type SweepReport struct {
	Cells []SweepCell // one per planned cell, in plan order

	CellsExecuted int
	// CellsSkipped were restored complete from the resume journal.
	CellsSkipped int
	// GoldenRuns counts golden-phase executions; GoldenHits counts cells
	// served by an already-prepared golden from the cache.
	GoldenRuns int
	GoldenHits int

	FaultsDone int64
	// FaultsSaved totals the budgeted injections adaptive cells stopped
	// short of running (including journal-restored cells).
	FaultsSaved int64
	EarlyStops  int64
	Forks       uint64
	ForkReuses  uint64
	// Checkpoint-ladder totals across all executed cells (see
	// SweepOptions.LadderRungs).
	RungHits       uint64
	ReplayedCycles uint64

	Elapsed time.Duration
}

// RunSweep plans and executes a campaign sweep. The expensive shared
// prefix of every cell — compiled image plus golden run — is memoized per
// (ISA, workload, preset) and reused across campaigns; every cell's
// verdicts are nevertheless bit-identical to a standalone RunCampaign /
// RunAccelCampaign with the same seed.
func RunSweep(o SweepOptions) (*SweepReport, error) {
	models := make([]string, len(o.Models))
	for i, m := range o.Models {
		if m == "" {
			m = Transient
		}
		models[i] = string(m)
	}
	spec := sweep.Spec{
		ISAs:             o.ISAs,
		Workloads:        o.Workloads,
		Targets:          o.Targets,
		Designs:          o.Designs,
		Components:       o.Components,
		Models:           models,
		Faults:           o.Faults,
		Seed:             o.Seed,
		TargetMargin:     o.TargetMargin,
		Confidence:       o.Confidence,
		MinFaults:        o.MinFaults,
		MaxFaults:        o.MaxFaults,
		BitsPerFault:     o.BitsPerFault,
		ValidOnly:        o.ValidOnly,
		HVF:              o.HVF,
		EarlyTermination: o.EarlyTermination,
		WatchdogFactor:   o.WatchdogFactor,
		PhysRegs:         o.PhysRegs,
		Preset:           o.Preset,
		LadderRungs:      o.LadderRungs,
		Workers:          o.Workers,
		CellParallel:     o.CellParallel,
		OutDir:           o.OutDir,
		Metrics:          o.Metrics,
		Profile:          o.Profile,
	}
	if o.OnProgress != nil {
		spec.OnProgress = func(s sweep.Snapshot) {
			o.OnProgress(SweepProgress{
				TotalCells:    s.TotalCells,
				CellsStarted:  s.CellsStarted,
				CellsFinished: s.CellsFinished,
				CellsSkipped:  s.CellsSkipped,
				TotalFaults:   s.TotalFaults,
				FaultsDone:    s.FaultsDone,
				FaultsSaved:   s.FaultsSaved,
				EarlyStops:    s.EarlyStops,
				Elapsed:       s.Elapsed,
				CellsPerSec:   s.CellsPerSec,
				ETA:           s.ETA,
				LastCell:      s.LastCell,
			})
		}
	}
	res, err := sweep.Run(spec)
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{
		Cells:          make([]SweepCell, len(res.Cells)),
		CellsExecuted:  res.Counters.CellsExecuted,
		CellsSkipped:   res.Counters.CellsSkipped,
		GoldenRuns:     res.Counters.GoldenRuns,
		GoldenHits:     res.Counters.GoldenHits,
		FaultsDone:     res.Counters.FaultsDone,
		FaultsSaved:    res.Counters.FaultsSaved,
		EarlyStops:     res.Counters.EarlyStops,
		Forks:          res.Counters.Forks,
		ForkReuses:     res.Counters.ForkReuses,
		RungHits:       res.Counters.RungHits,
		ReplayedCycles: res.Counters.ReplayedCycles,
		Elapsed:        res.Elapsed,
	}
	for i, c := range res.Cells {
		sc := SweepCell{
			Key:            c.Key,
			Kind:           c.Cell.Kind,
			ISA:            c.Cell.ISA,
			Workload:       c.Cell.Workload,
			Target:         c.Cell.Target,
			Design:         c.Cell.Design,
			Component:      c.Cell.Component,
			Model:          FaultModel(c.Cell.Model),
			Faults:         c.Faults,
			Masked:         c.Masked,
			SDC:            c.SDC,
			Crash:          c.Crash,
			EarlyStops:     c.EarlyStops,
			AVF:            c.AVF,
			SDCAVF:         c.SDCAVF,
			CrashAVF:       c.CrashAVF,
			HVFMeasured:    c.HVFMeasured,
			Margin:         c.Margin,
			Z:              c.Z,
			AchievedMargin: c.AchievedMargin,
			Requested:      c.Requested,
			FaultsSaved:    c.FaultsSaved,
			Batches:        c.Batches,
			GoldenCycles:   c.GoldenCycles,
			TargetBits:     c.TargetBits,
			WallMS:         c.WallMS,
		}
		if c.HVF != nil {
			sc.HVF = *c.HVF
		}
		rep.Cells[i] = sc
	}
	return rep, nil
}

// GoldenReport summarizes a fault-free workload run.
type GoldenReport struct {
	Workload string
	ISA      string
	Cycles   uint64
	Insts    uint64
	IPC      float64
	CodeSize int
	Ops      float64
}

// RunGolden executes a workload without faults, for performance studies.
func RunGolden(isaName, workload string) (*GoldenReport, error) {
	a, err := isa.ByName(isaName)
	if err != nil {
		return nil, err
	}
	spec, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	img, err := program.Compile(a, spec.Build())
	if err != nil {
		return nil, err
	}
	pre := config.TableII()
	sys, err := soc.New(img, pre.CPU, pre.Hier, pre.MemLatency)
	if err != nil {
		return nil, err
	}
	res := sys.Run(500_000_000)
	if res.Status != soc.RunCompleted {
		return nil, fmt.Errorf("marvel: golden run %v (trap %v)", res.Status, res.Trap)
	}
	return &GoldenReport{
		Workload: workload,
		ISA:      isaName,
		Cycles:   res.Cycles,
		Insts:    res.Stats.Insts,
		IPC:      res.Stats.IPC(),
		CodeSize: len(img.Code),
		Ops:      spec.Ops,
	}, nil
}

// SoCReport summarizes a heterogeneous CPU+accelerator run.
type SoCReport struct {
	ISA         string
	Design      string
	IntCtrl     string // "gic" or "plic"
	SoCCycles   uint64
	AccelCycles uint64
	CPUInsts    uint64
	OutputOK    bool
}

// RunSoC drives an accelerator design from a CPU program over MMRs, DMA
// and the completion interrupt — the full heterogeneous flow of Figure 1.
func RunSoC(isaName, design string) (*SoCReport, error) {
	a, err := isa.ByName(isaName)
	if err != nil {
		return nil, err
	}
	spec, err := machsuite.ByName(design)
	if err != nil {
		return nil, err
	}
	task := soc.RelocateTask(spec.Task)
	prog, err := soc.DriverProgram(task)
	if err != nil {
		return nil, err
	}
	img, err := program.Compile(a, prog)
	if err != nil {
		return nil, err
	}
	pre := config.TableII()
	sys, err := soc.New(img, pre.CPU, pre.Hier, pre.MemLatency)
	if err != nil {
		return nil, err
	}
	cl, err := accel.NewCluster(spec.Design, accel.MemHostPort{Mem: sys.Mem})
	if err != nil {
		return nil, err
	}
	if err := sys.AttachCluster(cl); err != nil {
		return nil, err
	}
	res := sys.Run(100_000_000)
	if res.Status != soc.RunCompleted {
		return nil, fmt.Errorf("marvel: SoC run %v (trap %v)", res.Status, res.Trap)
	}
	want := spec.Ref()
	ok := len(res.Output) == len(want)
	if ok {
		for i := range want {
			if res.Output[i] != want[i] {
				ok = false
				break
			}
		}
	}
	return &SoCReport{
		ISA:         isaName,
		Design:      design,
		IntCtrl:     sys.IntCtrl.Name(),
		SoCCycles:   res.Cycles,
		AccelCycles: cl.TaskCycles(),
		CPUInsts:    res.Stats.Insts,
		OutputOK:    ok,
	}, nil
}

// WeightedAVF aggregates per-benchmark AVFs weighted by execution time
// (the paper's §V-A wAVF).
func WeightedAVF(reports []*Report) float64 {
	avfs := make([]float64, len(reports))
	ts := make([]float64, len(reports))
	for i, r := range reports {
		avfs[i] = r.AVF
		ts[i] = float64(r.GoldenCycles)
	}
	return metrics.WeightedAVF(avfs, ts)
}

// WeightedSDCAVF aggregates the SDC component of the AVF the same way.
func WeightedSDCAVF(reports []*Report) float64 {
	avfs := make([]float64, len(reports))
	ts := make([]float64, len(reports))
	for i, r := range reports {
		avfs[i] = r.SDCAVF
		ts[i] = float64(r.GoldenCycles)
	}
	return metrics.WeightedAVF(avfs, ts)
}

// ClockHz is the modeled SoC clock for OPS/OPF computations.
const ClockHz = 1e9

// OPF computes the Operations-per-Failure metric of §V-G. A campaign
// that observed zero failures has no finite OPF: measured reports false
// and the value is 0 ("no failure observed over this sample"), keeping
// +Inf out of JSON-encoded reports.
func OPF(ops float64, cycles uint64, avf float64) (opf float64, measured bool) {
	return metrics.OPF(ops, cycles, ClockHz, avf)
}

// OPS computes operations per second at the modeled clock.
func OPS(ops float64, cycles uint64) float64 {
	return metrics.OPS(ops, cycles, ClockHz)
}

// SampleSize returns the Leveugle et al. statistical sample size for a
// structure of populationBits at error margin e and 95% confidence.
func SampleSize(populationBits uint64, e float64) int {
	return core.SampleSize(populationBits, e, 1.96)
}
