package marvel_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§V): one testing.B benchmark per experiment, printing the
// same rows/series the paper plots. Campaign sizes default to a scaled
// sample (MARVEL_FAULTS, default 24 faults per structure) so the whole
// harness completes in minutes; cmd/marvel-figures runs the full-resolution
// version (1,000 faults per structure, the paper's sample size).
//
//	go test -bench=. -benchmem
//	MARVEL_FAULTS=200 go test -bench=Fig04 -benchtime=1x

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"marvel/internal/accel"
	"marvel/internal/campaign"
	"marvel/internal/config"
	"marvel/internal/core"
	"marvel/internal/figures"
	"marvel/internal/isa"
	"marvel/internal/machsuite"
	"marvel/internal/obs"
	"marvel/internal/program"
	"marvel/internal/soc"
	"marvel/internal/workloads"
)

func benchParams() figures.Params {
	p := figures.Params{Faults: 24, W: os.Stdout}
	if v := os.Getenv("MARVEL_FAULTS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			p.Faults = n
		}
	}
	if v := os.Getenv("MARVEL_WORKLOADS"); v != "" {
		p.Workloads = strings.Split(v, ",")
	}
	return p
}

func benchCPUFigure(b *testing.B, id string) {
	var spec figures.CPUFigureSpec
	for _, s := range figures.CPUFigures() {
		if s.ID == id {
			spec = s
		}
	}
	if spec.ID == "" {
		b.Fatalf("unknown figure %s", id)
	}
	for i := 0; i < b.N; i++ {
		p := benchParams()
		rows, err := figures.CPUFigure(p, spec.Target, spec.Model, spec.Metric)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			figures.PrintCPUFigure(os.Stdout, spec.Title, rows)
		}
	}
}

// --- Figures 4-8: transient AVF per structure ---

func BenchmarkFig04_PRF_AVF(b *testing.B) { benchCPUFigure(b, "fig04") }
func BenchmarkFig05_L1I_AVF(b *testing.B) { benchCPUFigure(b, "fig05") }
func BenchmarkFig06_L1D_AVF(b *testing.B) { benchCPUFigure(b, "fig06") }
func BenchmarkFig07_LQ_AVF(b *testing.B)  { benchCPUFigure(b, "fig07") }
func BenchmarkFig08_SQ_AVF(b *testing.B)  { benchCPUFigure(b, "fig08") }

// --- Figures 9-11: SDC contribution to the AVF ---

func BenchmarkFig09_PRF_SDC(b *testing.B) { benchCPUFigure(b, "fig09") }
func BenchmarkFig10_L1I_SDC(b *testing.B) { benchCPUFigure(b, "fig10") }
func BenchmarkFig11_L1D_SDC(b *testing.B) { benchCPUFigure(b, "fig11") }

// --- Figures 12-13: SDC probability under permanent faults ---

func BenchmarkFig12_L1I_Perm_SDC(b *testing.B) { benchCPUFigure(b, "fig12") }
func BenchmarkFig13_L1D_Perm_SDC(b *testing.B) { benchCPUFigure(b, "fig13") }

// --- Figure 14: DSA component AVF (SDC/Crash breakdown) ---

func BenchmarkFig14_DSA_AVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Faults *= 2
		if i > 0 {
			p.W = nullWriter{}
		}
		if err := figures.Fig14(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 15: PRF-size sensitivity (RISC-V) ---

func BenchmarkFig15_PRF_Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		if i > 0 {
			p.W = nullWriter{}
		}
		if err := figures.Fig15(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 16: CPU vs DSA — AVF breakdown and OPF for 4 algorithms ---

func BenchmarkFig16_CPU_vs_DSA_OPF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Faults *= 2
		if i > 0 {
			p.W = nullWriter{}
		}
		if err := figures.Fig16(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 17: gemm design-space exploration ---

func BenchmarkFig17_GEMM_DSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Faults *= 3
		if i > 0 {
			p.W = nullWriter{}
		}
		if err := figures.Fig17(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 18: HVF vs AVF ---

func BenchmarkFig18_HVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Workloads = nil // fixed six-benchmark set
		if i > 0 {
			p.W = nullWriter{}
		}
		if err := figures.Fig18(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Listing 1: injector validation ---

func BenchmarkListing1Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Faults *= 2
		if i > 0 {
			p.W = nullWriter{}
		}
		avf, err := figures.Listing1(p)
		if err != nil {
			b.Fatal(err)
		}
		if avf < 0.95 {
			b.Fatalf("validation AVF %.3f, want ~1.0", avf)
		}
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// --- Ablation benches (DESIGN.md design-choice studies) ---

// BenchmarkAblation_EarlyTermination measures the §IV-B optimization's
// effect on campaign wall time.
func BenchmarkAblation_EarlyTermination(b *testing.B) {
	spec, err := workloads.ByName("dijkstra")
	if err != nil {
		b.Fatal(err)
	}
	img, err := program.Compile(isa.RV64L{}, spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	for _, et := range []bool{false, true} {
		et := et
		b.Run(fmt.Sprintf("earlyterm=%v", et), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := campaign.Run(campaign.Config{
					Image:            img,
					Preset:           config.TableII(),
					Target:           "prf",
					Model:            core.Transient,
					Faults:           benchParams().Faults,
					Seed:             5,
					EarlyTermination: et,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_CheckpointForking measures the campaign's faulty-run
// setup strategies: legacy per-run deep cloning of the checkpoint vs
// copy-on-write forking with dirty-state reset, plus the cold-start
// baseline (no checkpoint at all). The per-fault-setup sub-benchmarks
// isolate the setup cost itself — the acceptance bar is CoW reset at least
// 2x cheaper than a legacy clone — while the end-to-end ones include the
// simulation so the whole-campaign effect is visible.
func BenchmarkAblation_CheckpointForking(b *testing.B) {
	spec, err := workloads.ByName("rijndael")
	if err != nil {
		b.Fatal(err)
	}
	img, err := program.Compile(isa.RV64L{}, spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	pre := config.TableII()
	checkpoint := func(b *testing.B) *soc.System {
		b.Helper()
		sys, err := soc.New(img, pre.CPU, pre.Hier, pre.MemLatency)
		if err != nil {
			b.Fatal(err)
		}
		var base *soc.System
		sys.CheckpointHook = func(uint64) { base = sys.Clone() }
		if res := sys.Run(50_000_000); res.Status != soc.RunCompleted {
			b.Fatal(res.Status)
		}
		return base
	}

	b.Run("per-fault-setup/legacy-clone", func(b *testing.B) {
		base := checkpoint(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := base.Clone()
			_ = s
		}
	})
	b.Run("per-fault-setup/cow-reset", func(b *testing.B) {
		base := checkpoint(b)
		scratch := base.Fork()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Dirty the scratch the way a faulty run would (untimed), then
			// time only the rollback that prepares the next run.
			b.StopTimer()
			scratch.Run(200_000)
			b.StartTimer()
			scratch.Reset()
		}
		pages, sets := scratch.ForkCounters()
		b.ReportMetric(float64(pages)/float64(b.N), "pages-copied/op")
		b.ReportMetric(float64(sets)/float64(b.N), "sets-restored/op")
	})

	b.Run("end-to-end/legacy-clone", func(b *testing.B) {
		base := checkpoint(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := base.Clone()
			if res := s.Run(50_000_000); res.Status != soc.RunCompleted {
				b.Fatal(res.Status)
			}
		}
	})
	b.Run("end-to-end/cow-fork", func(b *testing.B) {
		base := checkpoint(b)
		scratch := base.Fork()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 {
				scratch.Reset()
			}
			if res := scratch.Run(50_000_000); res.Status != soc.RunCompleted {
				b.Fatal(res.Status)
			}
		}
		pages, _ := scratch.ForkCounters()
		b.ReportMetric(float64(pages)/float64(b.N), "pages-copied/op")
	})
	b.Run("end-to-end/cold-start", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := soc.New(img, pre.CPU, pre.Hier, pre.MemLatency)
			if err != nil {
				b.Fatal(err)
			}
			if res := sys.Run(50_000_000); res.Status != soc.RunCompleted {
				b.Fatal(res.Status)
			}
		}
	})
}

// BenchmarkAccelCampaign compares the accelerator campaign's faulty-run
// strategies: the legacy serial rebuild-per-fault baseline vs the
// fork/reset worker pool. Both draw the identical mask population (the
// equivalence suite proves bit-identical verdicts), so the comparison is
// pure setup/schedule cost.
func BenchmarkAccelCampaign(b *testing.B) {
	spec, err := machsuite.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, workers int, legacy bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := accel.RunCampaign(accel.CampaignConfig{
				Design: spec.Design, Task: spec.Task, Target: "MATRIX1",
				Model: core.Transient, Faults: 64, Seed: 13,
				Workers: workers, LegacyRebuild: legacy,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Counts.Total() != 64 {
				b.Fatalf("classified %d of 64", res.Counts.Total())
			}
		}
	}
	b.Run("serial-rebuild", func(b *testing.B) { run(b, 1, true) })
	b.Run("serial-reuse", func(b *testing.B) { run(b, 1, false) })
	b.Run("parallel-reuse", func(b *testing.B) { run(b, 0, false) })
}

// BenchmarkCampaignLadder measures checkpoint-ladder dispatch on a
// long-window workload: the same campaign with a single window-start
// checkpoint versus an 8-rung ladder. Verdicts are bit-identical (the
// ladder equivalence suite proves it); what changes is how many
// pre-injection cycles each faulty run replays before its first flip.
// The benchmark reports that counter per variant and fails outright if
// the ladder does not cut it at least in half — the guard the verify
// script runs in CI.
func BenchmarkCampaignLadder(b *testing.B) {
	spec, err := workloads.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	img, err := program.Compile(isa.RV64L{}, spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, rungs int) uint64 {
		b.Helper()
		var replayed uint64
		for i := 0; i < b.N; i++ {
			res, err := campaign.Run(campaign.Config{
				Image:       img,
				Preset:      config.TableII(),
				Target:      "prf",
				Model:       core.Transient,
				Faults:      24,
				Seed:        77,
				Workers:     4,
				LadderRungs: rungs,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Counts.Total() != 24 {
				b.Fatalf("classified %d of 24", res.Counts.Total())
			}
			replayed = res.Forking.ReplayedCycles
		}
		b.ReportMetric(float64(replayed), "replayed-cycles")
		return replayed
	}
	var flat, laddered uint64
	b.Run("single-checkpoint", func(b *testing.B) { flat = run(b, 0) })
	b.Run("ladder-8", func(b *testing.B) { laddered = run(b, 8) })
	if flat < 2*laddered {
		b.Fatalf("ladder replayed %d pre-injection cycles vs %d single-checkpoint — want at least a 2x reduction",
			laddered, flat)
	}
	fmt.Printf("\nLadder ablation: pre-injection replay %d cycles (single checkpoint) -> %d cycles (8 rungs), %.1fx reduction\n",
		flat, laddered, float64(flat)/float64(laddered))
}

// BenchmarkCampaignAdaptive measures confidence-targeted sizing on a
// low-AVF cell: the fixed budget is the classical worst-case sample size
// (Leveugle et al., p = 0.5) for a ±5% margin, the adaptive run targets
// the same ±5% but stops as soon as the Wilson interval around the
// *observed* AVF converges. The adaptive record stream is a bit-identical
// prefix of the fixed one (the adaptive equivalence suites prove it);
// what changes is how many injections ever run. The benchmark reports
// both counts and fails outright if adaptive saves less than 30% of the
// budget at equal margin — the guard the verify script runs in CI.
func BenchmarkCampaignAdaptive(b *testing.B) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		b.Fatal(err)
	}
	img, err := program.Compile(isa.RV64L{}, spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	const margin = 0.05
	base := campaign.Config{
		Image:   img,
		Preset:  config.Fast(),
		Target:  "l1d",
		Model:   core.Transient,
		Faults:  1, // probe run to learn the population size
		Seed:    77,
		Workers: 4,
	}
	probe, err := campaign.Run(base)
	if err != nil {
		b.Fatal(err)
	}
	budget := core.SampleSize(probe.TargetBits, margin, 1.96)
	base.Faults = budget

	var fixedN, adaptiveN int
	b.Run("fixed-worst-case", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := campaign.Run(base)
			if err != nil {
				b.Fatal(err)
			}
			fixedN = len(res.Records)
		}
		b.ReportMetric(float64(fixedN), "injections")
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.TargetMargin = margin
			res, err := campaign.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.AchievedMargin > margin {
				b.Fatalf("stopped at ±%.4f, above the ±%.2f target", res.AchievedMargin, margin)
			}
			adaptiveN = len(res.Records)
		}
		b.ReportMetric(float64(adaptiveN), "injections")
	})
	saved := fixedN - adaptiveN
	if float64(saved) < 0.30*float64(fixedN) {
		b.Fatalf("adaptive ran %d of %d injections (saved %.0f%%) — want at least 30%% saved at the same ±%.2f margin",
			adaptiveN, fixedN, 100*float64(saved)/float64(fixedN), margin)
	}
	fmt.Printf("\nAdaptive sizing: %d worst-case injections -> %d adaptive (%.0f%% saved) at ±%.0f%% margin, 95%% confidence\n",
		fixedN, adaptiveN, 100*float64(saved)/float64(fixedN), 100*margin)
}

// BenchmarkAblation_InjectionDomain compares whole-array and valid-only
// fault populations for the L1D (the DESIGN.md domain decision).
func BenchmarkAblation_InjectionDomain(b *testing.B) {
	spec, err := workloads.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	img, err := program.Compile(isa.RV64L{}, spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var avfs [2]float64
		for di, dom := range []core.Domain{core.DomainWholeArray, core.DomainValidOnly} {
			res, err := campaign.Run(campaign.Config{
				Image:  img,
				Preset: config.TableII(),
				Target: "l1d",
				Model:  core.Transient,
				Faults: benchParams().Faults * 2,
				Seed:   3,
				Domain: dom,
			})
			if err != nil {
				b.Fatal(err)
			}
			avfs[di] = res.Counts.AVF()
		}
		if i == 0 {
			fmt.Printf("\nAblation: L1D AVF whole-array %.1f%% vs valid-only %.1f%%\n",
				100*avfs[0], 100*avfs[1])
		}
	}
}

// BenchmarkSimulatorThroughput reports raw simulation speed (cycles/sec of
// the golden RISC-V sha run), the "typical use of microarchitectural
// simulators" the abstract mentions.
// BenchmarkTracingOverhead quantifies the observability layer's cost on
// the simulator hot path. "off" is the golden path — a nil Tracer, so
// every emission site reduces to one nil check — and must stay within
// noise (< 2%) of the pre-observability throughput; "on" attaches a
// RingSink to bound the worst case.
func BenchmarkTracingOverhead(b *testing.B) {
	spec, err := workloads.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	img, err := program.Compile(isa.RV64L{}, spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	pre := config.TableII()
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				sys, err := soc.New(img, pre.CPU, pre.Hier, pre.MemLatency)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "on" {
					sys.CPU.Trace = obs.NewRingSink(512)
				}
				res := sys.Run(50_000_000)
				if res.Status != soc.RunCompleted {
					b.Fatal(res.Status)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}

// BenchmarkProfilingOverhead quantifies the span layer's cost on the
// campaign engine. "off" is a nil Profiler, so every span site reduces
// to one nil check and a no-op End; "on" attaches a live profiler
// (atomic phase-table adds, no timeline sink — the worst case that
// still sits on the campaign hot path). The guard compares best-of-run
// wall times and fails if profiling costs more than 5%: spans bracket
// the simulated work, they must never become part of it. The verify
// script runs this in CI.
func BenchmarkProfilingOverhead(b *testing.B) {
	spec, err := workloads.ByName("crc32")
	if err != nil {
		b.Fatal(err)
	}
	img, err := program.Compile(isa.RV64L{}, spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	base := campaign.Config{
		Image:   img,
		Preset:  config.Fast(),
		Target:  "prf",
		Model:   core.Transient,
		Faults:  48,
		Seed:    7,
		Workers: 4,
	}
	// Best-of-all-iterations timing: the minimum is the least noisy
	// estimator for a guard that compares two variants.
	run := func(b *testing.B, profiled bool) time.Duration {
		b.Helper()
		best := time.Duration(math.MaxInt64)
		for i := 0; i < b.N; i++ {
			for rep := 0; rep < 3; rep++ {
				cfg := base
				if profiled {
					cfg.Profile = obs.NewProfiler()
				}
				t0 := time.Now()
				res, err := campaign.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Counts.Total() != base.Faults {
					b.Fatalf("classified %d of %d", res.Counts.Total(), base.Faults)
				}
				if d := time.Since(t0); d < best {
					best = d
				}
			}
		}
		b.ReportMetric(best.Seconds()*1e3, "best-ms")
		return best
	}
	var off, on time.Duration
	b.Run("off", func(b *testing.B) { off = run(b, false) })
	b.Run("on", func(b *testing.B) { on = run(b, true) })
	overhead := float64(on-off) / float64(off)
	if overhead > 0.05 {
		b.Fatalf("profiling overhead %.1f%% (off %v, on %v) — want under 5%%", 100*overhead, off, on)
	}
	fmt.Printf("\nProfiling overhead: %v unprofiled -> %v profiled (%+.1f%%)\n", off, on, 100*overhead)
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := workloads.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	img, err := program.Compile(isa.RV64L{}, spec.Build())
	if err != nil {
		b.Fatal(err)
	}
	pre := config.TableII()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := soc.New(img, pre.CPU, pre.Hier, pre.MemLatency)
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Run(50_000_000)
		if res.Status != soc.RunCompleted {
			b.Fatal(res.Status)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}
