package marvel

import (
	"fmt"

	"marvel/internal/accel"
	"marvel/internal/campaign"
	"marvel/internal/classify"
	"marvel/internal/config"
	"marvel/internal/core"
	"marvel/internal/isa"
	"marvel/internal/machsuite"
	"marvel/internal/obs"
	"marvel/internal/program"
	"marvel/internal/sweep"
	"marvel/internal/workloads"
)

// presetFor resolves a CPU hardware preset name and applies the PhysRegs
// override.
func presetFor(name string, physRegs int) (config.Preset, error) {
	var pre config.Preset
	switch name {
	case "", "table2":
		pre = config.TableII()
	case "fast":
		pre = config.Fast()
	default:
		return config.Preset{}, fmt.Errorf("marvel: unknown preset %q (known: table2, fast)", name)
	}
	if physRegs > 0 {
		pre = pre.WithPhysRegs(physRegs)
	}
	return pre, nil
}

// NewMetricsRegistry creates a campaign metrics registry to attach to
// CampaignOptions/AccelOptions/SweepOptions.Metrics, publish under expvar
// and serve via ServeDebug.
func NewMetricsRegistry() *obs.Registry { return obs.NewRegistry() }

// ServeDebug starts the runtime-introspection endpoint (JSON /metrics,
// Prometheus /metrics/prom, /debug/vars, /debug/pprof/) on addr for the
// given registry; it also publishes the registry under the expvar name
// "marvel". Close the returned server when the run finishes.
func ServeDebug(addr string, reg *obs.Registry) (*obs.DebugServer, error) {
	if err := reg.Publish("marvel"); err != nil {
		return nil, err
	}
	return obs.ServeDebug(addr, reg)
}

// ExplainOptions selects one campaign fault — coordinates plus every knob
// that shapes the fault space — for deterministic re-execution with full
// tracing. Fill the CPU fields (ISA, Workload, Target) or the accelerator
// fields (Design, Component), not both.
type ExplainOptions struct {
	// CPU fault coordinates.
	ISA      string
	Workload string
	Target   string // single structure or "prf+rob+iq" combination

	// Accelerator fault coordinates.
	Design    string
	Component string

	Model FaultModel
	// Seed and Index identify the fault: Index is the mask index inside
	// the campaign run with this Seed. Mask derivation is pure, so the
	// re-run reproduces campaign fault (Seed, Index) exactly.
	Seed  int64
	Index int

	// Campaign knobs that shape the fault space or classification; set
	// them to the values of the campaign being explained.
	BitsPerFault     int
	ValidOnly        bool
	EarlyTermination bool
	WatchdogFactor   float64
	PhysRegs         int
	Preset           string // "", "table2", "fast"
}

// TraceEvent is one fault-lifecycle observation of an explained run.
type TraceEvent struct {
	Cycle  uint64
	Kind   string // e.g. "bit-flipped", "divergence", "verdict"
	Target string
	Bit    uint64
	Commit int
	N      uint64
	Detail string
}

// ExplainedFault is one injected fault of the explained mask.
type ExplainedFault struct {
	Target string
	Bit    uint64
	Cycle  uint64 // injection cycle (transient models only)
	Model  FaultModel
}

// Explanation is the full story of one campaign fault: what was injected,
// what it did cycle by cycle, and how it was classified.
type Explanation struct {
	Kind  string // "cpu" or "accel"
	Index int
	Seed  int64

	Faults []ExplainedFault

	// Verdict fields — identical to the campaign record at this index.
	Verdict       string // "Masked", "SDC", "Crash"
	Reason        string // masking mechanism, when Masked
	CrashCode     string
	Cycles        uint64
	GoldenCycles  uint64
	EarlyStop     bool
	HVFCorrupt    bool
	DivergeCommit int // commit index of first divergence; -1 if none

	// Events is the retained cycle-ordered event timeline;
	// EventsDropped counts middle-of-stream events evicted by the
	// bounded sink.
	Events        []TraceEvent
	EventsDropped int
	// Narrative is the human-readable rendering: timeline lines plus a
	// concluding "why" sentence.
	Narrative []string
}

// Explain deterministically re-runs one campaign fault with tracing armed
// and narrates its propagation. The verdict is bit-identical to what a
// campaign with the same options would record at the same index — tracing
// only observes. CPU explanations always run the commit-trace comparison
// so the first architectural divergence is located even if the original
// campaign was AVF-only.
func Explain(o ExplainOptions) (*Explanation, error) {
	cpuSide := o.Workload != "" || o.ISA != "" || o.Target != ""
	accelSide := o.Design != "" || o.Component != ""
	switch {
	case cpuSide && accelSide:
		return nil, fmt.Errorf("marvel: explain: give CPU coordinates or accelerator coordinates, not both")
	case cpuSide:
		return explainCPU(o)
	case accelSide:
		return explainAccel(o)
	}
	return nil, fmt.Errorf("marvel: explain: no fault coordinates (need ISA/workload/target or design/component)")
}

func explainCPU(o ExplainOptions) (*Explanation, error) {
	a, err := isa.ByName(o.ISA)
	if err != nil {
		return nil, err
	}
	spec, err := workloads.ByName(o.Workload)
	if err != nil {
		return nil, err
	}
	model, err := o.Model.internal()
	if err != nil {
		return nil, err
	}
	img, err := program.Compile(a, spec.Build())
	if err != nil {
		return nil, err
	}
	pre, err := presetFor(o.Preset, o.PhysRegs)
	if err != nil {
		return nil, err
	}
	targets, err := sweep.SplitTarget(o.Target)
	if err != nil {
		return nil, err
	}
	cfg := campaign.Config{
		Image:            img,
		Preset:           pre,
		Model:            model,
		Seed:             o.Seed,
		BitsPerFault:     o.BitsPerFault,
		EarlyTermination: o.EarlyTermination,
		WatchdogFactor:   o.WatchdogFactor,
	}
	if o.ValidOnly {
		cfg.Domain = core.DomainValidOnly
	}
	if len(targets) > 1 {
		cfg.MultiTargets = targets
	} else {
		cfg.Target = targets[0]
	}
	ex, err := campaign.Explain(cfg, o.Index)
	if err != nil {
		return nil, err
	}
	out := &Explanation{
		Kind:          sweep.KindCPU,
		Index:         o.Index,
		Seed:          o.Seed,
		Verdict:       ex.Verdict.Outcome.String(),
		Reason:        maskReason(ex.Verdict),
		CrashCode:     ex.Verdict.CrashCode,
		Cycles:        ex.Verdict.Cycles,
		GoldenCycles:  ex.Golden.Cycles,
		EarlyStop:     ex.Verdict.EarlyStop,
		HVFCorrupt:    ex.Verdict.HVFCorrupt,
		DivergeCommit: ex.Verdict.DivergeCommit,
	}
	for _, f := range ex.Mask.Faults {
		out.Faults = append(out.Faults, ExplainedFault{Target: f.Target, Bit: f.Bit, Cycle: f.Cycle, Model: FaultModel(f.Model.String())})
	}
	fillEvents(out, ex.Events, 0)
	return out, nil
}

func explainAccel(o ExplainOptions) (*Explanation, error) {
	spec, err := machsuite.ByName(o.Design)
	if err != nil {
		return nil, err
	}
	model, err := o.Model.internal()
	if err != nil {
		return nil, err
	}
	cfg := accel.CampaignConfig{
		Design:         spec.Design,
		Task:           spec.Task,
		Target:         o.Component,
		Model:          model,
		Seed:           o.Seed,
		WatchdogFactor: o.WatchdogFactor,
	}
	ex, err := accel.Explain(cfg, o.Index)
	if err != nil {
		return nil, err
	}
	out := &Explanation{
		Kind:          sweep.KindAccel,
		Index:         o.Index,
		Seed:          o.Seed,
		Verdict:       ex.Verdict.Outcome.String(),
		Reason:        maskReason(ex.Verdict),
		CrashCode:     ex.Verdict.CrashCode,
		Cycles:        ex.Verdict.Cycles,
		GoldenCycles:  ex.GoldenCycles,
		EarlyStop:     ex.Verdict.EarlyStop,
		DivergeCommit: -1,
		Faults: []ExplainedFault{{
			Target: ex.Fault.Target, Bit: ex.Fault.Bit, Cycle: ex.Fault.Cycle,
			Model: FaultModel(ex.Fault.Model.String()),
		}},
	}
	fillEvents(out, ex.Events, 0)
	return out, nil
}

// fillEvents converts and narrates the retained event stream. dropped is
// added to the sink's own eviction count (currently always 0 — the
// Explanation carries it so sinks with other policies can report theirs).
func fillEvents(out *Explanation, events []obs.Event, dropped int) {
	out.EventsDropped = dropped
	for _, e := range events {
		out.Events = append(out.Events, TraceEvent{
			Cycle: e.Cycle, Kind: e.Kind.String(), Target: e.Target,
			Bit: e.Bit, Commit: e.Commit, N: e.N, Detail: e.Detail,
		})
	}
	out.Narrative = obs.Narrative(events)
}

// maskReason spells out the masking mechanism, empty for non-masked
// verdicts.
func maskReason(v classify.Verdict) string {
	if v.Outcome != classify.Masked {
		return ""
	}
	return v.Reason.String()
}
