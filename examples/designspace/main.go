// Command designspace reproduces the paper's §V-H accelerator design-space
// exploration (Figure 17): the gemm accelerator is instantiated with
// 1..16 parallel multipliers, and for each configuration the framework
// reports the MATRIX1 scratchpad's AVF, the task latency and the area
// estimate — the three axes of the reliability/performance/area trade-off.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"marvel"
)

func main() {
	fmt.Println("gemm design-space exploration: parallel multipliers vs AVF/perf/area")
	fmt.Println()
	fmt.Printf("%-6s %-10s %-8s %-8s %-8s\n", "FUs", "AVF", "±margin", "cycles", "area")

	for _, fus := range []int{1, 2, 4, 8, 16} {
		rep, err := marvel.RunAccelCampaign(marvel.AccelOptions{
			Design:          "gemm",
			Component:       "MATRIX1",
			Model:           marvel.Transient,
			Faults:          150,
			Seed:            21,
			GemmMultipliers: fus,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-10.3f %-8.3f %-8d %-8.1f\n",
			fus, rep.AVF, rep.Margin, rep.TaskCycles, rep.AreaUnits)
	}

	fmt.Println()
	fmt.Println("fewer functional units -> longer task -> each SPM bit stays")
	fmt.Println("architecturally live for a larger share of the injection window,")
	fmt.Println("so the AVF rises as the datapath shrinks (Observation #8).")
}
