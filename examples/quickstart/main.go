// Command quickstart runs a first fault-injection campaign: transient
// faults in the physical register file while the sha benchmark runs on the
// RISC-V-flavoured out-of-order core, with HVF analysis on the same runs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"marvel"
)

func main() {
	fmt.Println("marvel quickstart: PRF transient faults under sha (riscv)")
	fmt.Println()

	rep, err := marvel.RunCampaign(marvel.CampaignOptions{
		ISA:      marvel.ISARiscv,
		Workload: "sha",
		Target:   "prf",
		Model:    marvel.Transient,
		Faults:   200,
		Seed:     42,
		HVF:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("golden run: %d cycles, %d instructions, IPC %.2f\n",
		rep.GoldenCycles, rep.GoldenInsts, rep.IPC)
	fmt.Printf("injections: %d (±%.1f%% at 95%% confidence)\n",
		rep.Faults, rep.Margin*100)
	fmt.Println()
	fmt.Printf("  masked : %4d  (%.1f%%)\n", rep.Masked, 100*float64(rep.Masked)/float64(rep.Faults))
	fmt.Printf("  SDC    : %4d  (%.1f%%)\n", rep.SDC, 100*float64(rep.SDC)/float64(rep.Faults))
	fmt.Printf("  crash  : %4d  (%.1f%%)\n", rep.Crash, 100*float64(rep.Crash)/float64(rep.Faults))
	fmt.Println()
	fmt.Printf("AVF  = %.3f  (SDC %.3f + Crash %.3f)\n", rep.AVF, rep.SDCAVF, rep.CrashAVF)
	fmt.Printf("HVF  = %.3f  (always >= AVF: hardware-visible corruptions)\n", rep.HVF)

	// How many injections would the paper's 3% margin need for this
	// structure?
	n := marvel.SampleSize(128*64, 0.03)
	fmt.Printf("\nfor a 3%% margin on this PRF, inject %d faults (paper uses 1000)\n", n)
}
