// Command heterosoc demonstrates the heterogeneous SoC flow of the paper's
// Figure 1: a CPU program configures the gemm accelerator through its
// memory-mapped registers, DMA moves data between system memory and the
// accelerator's scratchpads, the core sleeps in WFI, and the completion
// interrupt (GIC on Arm/x86, PLIC on RISC-V — the §III-C port) wakes it to
// collect the result. It then compares the reliability/performance
// trade-off of CPU vs accelerator execution with the OPF metric of §V-G.
//
//	go run ./examples/heterosoc
package main

import (
	"fmt"
	"log"

	"marvel"
)

func main() {
	fmt.Println("heterogeneous SoC: CPU + gemm accelerator")
	fmt.Println()

	// 1. Full-system runs: each ISA drives the accelerator through MMRs,
	//    DMA and its platform interrupt controller.
	for _, arch := range marvel.ISAs() {
		rep, err := marvel.RunSoC(arch, "gemm")
		if err != nil {
			log.Fatal(err)
		}
		status := "output OK"
		if !rep.OutputOK {
			status = "OUTPUT MISMATCH"
		}
		fmt.Printf("  %-6s intctrl=%-5s SoC cycles=%-7d accel task=%-6d CPU insts=%-5d %s\n",
			arch, rep.IntCtrl, rep.SoCCycles, rep.AccelCycles, rep.CPUInsts, status)
	}
	fmt.Println()

	// 2. CPU vs DSA reliability/performance (the Figure 16 methodology,
	//    here for one algorithm): AVF alone favours the CPU, OPF favours
	//    the accelerator.
	cpuRep, err := marvel.RunCampaign(marvel.CampaignOptions{
		ISA:      marvel.ISARiscv,
		Workload: "fft",
		Target:   "l1d",
		Model:    marvel.Transient,
		Faults:   150,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	gold, err := marvel.RunGolden(marvel.ISARiscv, "fft")
	if err != nil {
		log.Fatal(err)
	}
	dsaRep, err := marvel.RunAccelCampaign(marvel.AccelOptions{
		Design:    "fft",
		Component: "REAL",
		Model:     marvel.Transient,
		Faults:    150,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	cpuOPF, cpuMeasured := marvel.OPF(gold.Ops, gold.Cycles, cpuRep.AVF)
	dsaOPF, dsaMeasured := marvel.OPF(gold.Ops, dsaRep.TaskCycles, dsaRep.AVF)
	fmt.Println("fft on CPU (riscv, L1D faults) vs fft DSA (REAL SPM faults):")
	fmt.Printf("  CPU: AVF=%.3f cycles=%-7d OPF=%s ops-per-failure\n", cpuRep.AVF, gold.Cycles, opfString(cpuOPF, cpuMeasured))
	fmt.Printf("  DSA: AVF=%.3f cycles=%-7d OPF=%s ops-per-failure\n", dsaRep.AVF, dsaRep.TaskCycles, opfString(dsaOPF, dsaMeasured))
	if cpuMeasured && dsaMeasured && dsaOPF > cpuOPF {
		fmt.Println("  -> the accelerator is more vulnerable per fault, but its speed")
		fmt.Println("     buys more correct executions per failure (Observation #7).")
	}
}

// opfString renders an OPF value, or "n/a" when the campaign observed no
// failures (no finite OPF exists for AVF = 0).
func opfString(opf float64, measured bool) string {
	if !measured {
		return "n/a"
	}
	return fmt.Sprintf("%.3g", opf)
}
